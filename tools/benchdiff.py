#!/usr/bin/env python
"""Benchmark regression tracking: diff two ``BENCH_*.json`` reports.

Compares a candidate benchmark report (``python -m repro.experiments
propbench`` / ``lbbench`` output) against a committed baseline and exits
non-zero when a tracked metric regressed beyond tolerance.  What is
compared depends on whether the two reports were produced with the same
configuration:

scale-invariant (always compared)
    ``lockstep_*`` booleans — backend/bounder equivalence claims.  A
    ``True`` in the baseline that turned ``False`` is always a
    regression, at any scale.

relative metrics (same-config only)
    ``speedup_*`` ratios and ``simplex_iteration_reduction`` — compared
    with ``--tolerance`` percent allowed degradation.  This prefix
    covers both the per-call counters (``speedup_mis_calls_per_sec``)
    and the end-to-end wall-clock keys (``speedup_<backend>_wall`` from
    propbench solve mode, ``speedup_<config>_wall`` from lbbench solve
    mode).  Skipped when the configs differ: a speedup measured on tiny
    CI instances is not comparable to one measured at full scale.

absolute rates (same-config only)
    ``props_per_sec`` / ``conflicts_per_sec`` / ``calls_per_sec`` —
    compared with ``--rate-tolerance`` percent allowed degradation
    (generous by default: absolute rates are machine-dependent).

solution quality (same-config only)
    per-instance ``costs`` must not get worse, and the number of solved
    ``statuses`` must not drop.

candidate self-checks (no baseline needed)
    ``metrics_overhead.overhead_pct`` must stay under
    ``--overhead-limit`` — the zero-overhead-when-disabled contract.

``--quick`` regenerates a quick candidate in-process (the CI smoke
configuration of propbench) and diffs it against the committed baseline;
because the configs differ only the scale-invariant checks and the
self-checks apply.

Exit codes: 0 no regression, 1 regression(s) found, 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional, Tuple

#: Leaf keys treated as absolute throughput rates (machine-dependent).
RATE_KEYS = ("props_per_sec", "conflicts_per_sec", "calls_per_sec")

#: Leaf keys treated as relative (dimensionless) quality metrics.
RELATIVE_KEYS = ("simplex_iteration_reduction",)


def _flatten(
    prefix: str, node: Any, leaves: Dict[str, Any]
) -> None:
    """Flatten a nested report dict into ``path -> leaf value``."""
    if isinstance(node, dict):
        for key in node:
            _flatten("%s.%s" % (prefix, key) if prefix else key,
                     node[key], leaves)
    else:
        leaves[prefix] = node


def _leaf_name(path: str) -> str:
    """The final component of a flattened metric path."""
    return path.rsplit(".", 1)[-1]


def compare_reports(
    baseline: Dict[str, Any],
    candidate: Dict[str, Any],
    tolerance: float = 25.0,
    rate_tolerance: float = 50.0,
    overhead_limit: float = 10.0,
) -> List[Dict[str, Any]]:
    """Diff two benchmark reports; returns the list of findings.

    Each finding is ``{"metric", "baseline", "candidate", "kind",
    "regression"}``; callers decide what to do with non-regression
    informational entries.
    """
    same_config = baseline.get("config") == candidate.get("config")
    findings: List[Dict[str, Any]] = []

    def record(metric: str, kind: str, base: Any, cand: Any,
               regression: bool, note: str = "") -> None:
        """Append one comparison outcome."""
        findings.append(
            {
                "metric": metric,
                "kind": kind,
                "baseline": base,
                "candidate": cand,
                "regression": regression,
                "note": note,
            }
        )

    base_leaves: Dict[str, Any] = {}
    cand_leaves: Dict[str, Any] = {}
    _flatten("", baseline.get("families", {}), base_leaves)
    _flatten("", candidate.get("families", {}), cand_leaves)

    for path, base_value in sorted(base_leaves.items()):
        name = _leaf_name(path)
        cand_value = cand_leaves.get(path)
        if name.startswith("lockstep_"):
            if cand_value is None:
                continue
            record(
                path, "lockstep", base_value, cand_value,
                regression=bool(base_value) and not bool(cand_value),
            )
            continue
        if not same_config:
            continue
        if cand_value is None:
            continue
        if name.startswith("speedup_") or name in RELATIVE_KEYS:
            if not isinstance(base_value, (int, float)) or not base_value:
                continue
            floor = base_value * (1.0 - tolerance / 100.0)
            record(
                path, "relative", base_value, cand_value,
                regression=isinstance(cand_value, (int, float))
                and cand_value < floor,
                note="floor %.3f (tolerance %.0f%%)" % (floor, tolerance),
            )
            continue
        if name in RATE_KEYS:
            if not isinstance(base_value, (int, float)) or not base_value:
                continue
            floor = base_value * (1.0 - rate_tolerance / 100.0)
            record(
                path, "rate", base_value, cand_value,
                regression=isinstance(cand_value, (int, float))
                and cand_value < floor,
                note="floor %.1f (tolerance %.0f%%)" % (floor, rate_tolerance),
            )
            continue
        if name == "costs" and isinstance(base_value, list):
            if not isinstance(cand_value, list) or len(cand_value) != len(base_value):
                continue
            worse = any(
                c is not None and b is not None and c > b
                for b, c in zip(base_value, cand_value)
            )
            record(path, "costs", base_value, cand_value, regression=worse)
            continue
        if name == "statuses" and isinstance(base_value, list):
            if not isinstance(cand_value, list):
                continue
            solved = lambda statuses: sum(  # noqa: E731 - local helper
                1 for s in statuses if s in ("optimal", "unsatisfiable")
            )
            record(
                path, "statuses", base_value, cand_value,
                regression=solved(cand_value) < solved(base_value),
            )

    # Candidate self-checks: the disabled-metrics overhead contract.
    for path, value in sorted(cand_leaves.items()):
        if _leaf_name(path) == "overhead_pct":
            record(
                path, "overhead", None, value,
                regression=isinstance(value, (int, float))
                and value > overhead_limit,
                note="limit %.1f%%" % overhead_limit,
            )
    return findings


def format_findings(findings: List[Dict[str, Any]]) -> str:
    """Human-readable diff table; regressions flagged with ``REGRESSION``."""
    if not findings:
        return "no comparable metrics found"
    lines = []
    for item in findings:
        flag = "REGRESSION" if item["regression"] else "ok"
        note = (" [%s]" % item["note"]) if item["note"] else ""
        lines.append(
            "%-10s %-9s %s: %s -> %s%s"
            % (flag, item["kind"], item["metric"],
               item["baseline"], item["candidate"], note)
        )
    regressions = sum(1 for item in findings if item["regression"])
    lines.append(
        "%d metrics compared, %d regression(s)" % (len(findings), regressions)
    )
    return "\n".join(lines)


def _load(path: str) -> Dict[str, Any]:
    """Read one benchmark report, exiting with code 2 on failure."""
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, ValueError) as exc:
        print("benchdiff: cannot read %s: %s" % (path, exc), file=sys.stderr)
        raise SystemExit(2)


def _quick_candidate() -> Dict[str, Any]:
    """Regenerate a quick propbench report (the CI smoke configuration)."""
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
    )
    from repro.experiments.propbench import run_propbench

    return run_propbench(
        count=2, scale=0.25, rounds=10, trials=1,
        max_conflicts=200, time_limit=10.0,
    )


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; see the module docstring for semantics."""
    parser = argparse.ArgumentParser(
        prog="benchdiff",
        description="Diff two BENCH_*.json reports and flag regressions",
    )
    parser.add_argument(
        "baseline", nargs="?", default=None,
        help="committed baseline report (e.g. BENCH_propagation.json)",
    )
    parser.add_argument(
        "candidate", nargs="?", default=None,
        help="freshly generated report to check",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help=(
            "generate a quick propbench candidate in-process and diff it "
            "against the baseline (default BENCH_propagation.json)"
        ),
    )
    parser.add_argument(
        "--tolerance", type=float, default=25.0, metavar="PCT",
        help="allowed degradation of relative metrics (default 25%%)",
    )
    parser.add_argument(
        "--rate-tolerance", type=float, default=50.0, metavar="PCT",
        help="allowed degradation of absolute rates (default 50%%)",
    )
    parser.add_argument(
        "--overhead-limit", type=float, default=10.0, metavar="PCT",
        help="maximum disabled-metrics overhead self-check (default 10%%)",
    )
    parser.add_argument(
        "--report", metavar="FILE", default=None,
        help="write the findings as JSON",
    )
    args = parser.parse_args(argv)

    if args.quick:
        baseline_path = args.baseline or "BENCH_propagation.json"
        baseline = _load(baseline_path)
        candidate = _quick_candidate()
        print("benchdiff --quick: fresh propbench vs %s" % baseline_path)
    else:
        if not args.baseline or not args.candidate:
            parser.error("need BASELINE and CANDIDATE (or --quick)")
        baseline = _load(args.baseline)
        candidate = _load(args.candidate)

    findings = compare_reports(
        baseline, candidate,
        tolerance=args.tolerance,
        rate_tolerance=args.rate_tolerance,
        overhead_limit=args.overhead_limit,
    )
    print(format_findings(findings))
    if args.report:
        payload = {
            "regressions": sum(1 for f in findings if f["regression"]),
            "findings": findings,
        }
        try:
            with open(args.report, "w") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
        except OSError as exc:
            print("benchdiff: cannot write report: %s" % exc, file=sys.stderr)
            return 2
    return 1 if any(f["regression"] for f in findings) else 0


if __name__ == "__main__":
    sys.exit(main())
