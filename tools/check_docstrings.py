#!/usr/bin/env python
"""Dependency-free docstring-coverage gate (interrogate stand-in).

CI environments for this repo must not need anything beyond the standard
library, so this script reimplements the subset of `interrogate`'s
behaviour we configure in ``[tool.interrogate]`` (pyproject.toml): count
modules, classes, and functions/methods under ``src/``, skip private and
magic names (and ``__init__`` methods and function-local helpers), and
fail when the documented fraction drops below the threshold.

When ``interrogate`` *is* installed it reads the same pyproject section
and should agree; this script is the one CI actually runs::

    python tools/check_docstrings.py            # gate at the configured %
    python tools/check_docstrings.py --list     # show every undocumented node
"""

from __future__ import annotations

import argparse
import ast
import os
import sys
from typing import Iterator, List, Tuple

#: Kept in sync with [tool.interrogate] in pyproject.toml.
DEFAULT_FAIL_UNDER = 95.0
DEFAULT_PATHS = ("src",)


def _load_config(repo_root: str) -> Tuple[float, Tuple[str, ...]]:
    """Read fail-under / paths from pyproject's [tool.interrogate].

    Falls back to the module defaults when tomllib is unavailable
    (Python < 3.11) or the section is missing.
    """
    path = os.path.join(repo_root, "pyproject.toml")
    try:
        import tomllib
    except ImportError:
        return DEFAULT_FAIL_UNDER, DEFAULT_PATHS
    try:
        with open(path, "rb") as handle:
            data = tomllib.load(handle)
    except OSError:
        return DEFAULT_FAIL_UNDER, DEFAULT_PATHS
    section = data.get("tool", {}).get("interrogate", {})
    fail_under = float(section.get("fail-under", DEFAULT_FAIL_UNDER))
    paths = tuple(section.get("paths", DEFAULT_PATHS))
    return fail_under, paths


def _python_files(paths: Tuple[str, ...]) -> Iterator[str]:
    for root in paths:
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = [d for d in dirnames if d != "__pycache__"]
            for name in sorted(filenames):
                if name.endswith(".py"):
                    yield os.path.join(dirpath, name)


def _is_private(name: str) -> bool:
    return name.startswith("_") and not (
        name.startswith("__") and name.endswith("__")
    )


def _is_magic(name: str) -> bool:
    return name.startswith("__") and name.endswith("__")


def _walk_nodes(filename: str, tree: ast.Module) -> Iterator[Tuple[str, ast.AST]]:
    """Yield (qualified name, node) for every docstring-carrying scope.

    Mirrors the interrogate config: private names, magic methods,
    ``__init__``, and function-local definitions are not counted.
    """
    yield filename, tree

    def visit(node: ast.AST, prefix: str) -> Iterator[Tuple[str, ast.AST]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                if _is_private(child.name):
                    continue
                label = "%s:%s" % (prefix, child.name)
                yield label, child
                yield from visit(child, label)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # function-local helpers are not part of the API surface
                if _is_private(child.name) or _is_magic(child.name):
                    continue
                yield "%s:%s" % (prefix, child.name), child

    yield from visit(tree, filename)


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fail-under", type=float, default=None,
        help="override the pyproject threshold (percent)",
    )
    parser.add_argument(
        "--list", action="store_true", help="print every undocumented node"
    )
    args = parser.parse_args(argv)

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    fail_under, paths = _load_config(repo_root)
    if args.fail_under is not None:
        fail_under = args.fail_under

    total = 0
    documented = 0
    missing: List[str] = []
    for filename in _python_files(
        tuple(os.path.join(repo_root, p) for p in paths)
    ):
        with open(filename, "r") as handle:
            source = handle.read()
        try:
            tree = ast.parse(source, filename=filename)
        except SyntaxError as exc:
            print("cannot parse %s: %s" % (filename, exc), file=sys.stderr)
            return 2
        rel = os.path.relpath(filename, repo_root)
        for label, node in _walk_nodes(rel, tree):
            total += 1
            if ast.get_docstring(node):
                documented += 1
            else:
                missing.append(label)

    coverage = 100.0 * documented / total if total else 100.0
    print(
        "docstring coverage: %d/%d = %.1f%% (threshold %.1f%%)"
        % (documented, total, coverage, fail_under)
    )
    if args.list or coverage < fail_under:
        for label in missing:
            print("  undocumented: %s" % label)
    if coverage < fail_under:
        print("FAIL: coverage %.1f%% is below %.1f%%" % (coverage, fail_under))
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
