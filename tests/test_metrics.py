"""Tests for the metrics registry (repro.obs.metrics).

Covers instrument semantics (counter/gauge/histogram), family labeling
rules, deterministic exposition, cross-process snapshot/merge, the
NULL_METRICS zero-cost contract, and solver integration (counters agree
with SolverStats).
"""

import pytest

from repro import SolverOptions, parse, solve
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    NullMetricsRegistry,
    default_registry,
    set_default_registry,
)

OPT_INSTANCE = """\
* #variable= 3 #constraint= 3
min: +1 x1 +2 x2 +3 x3 ;
+1 x1 +1 x2 >= 1 ;
+1 x2 +1 x3 >= 1 ;
+1 x1 +1 x3 >= 1 ;
"""


class TestInstruments:
    """Raw instrument semantics."""

    def test_counter_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_counter_rejects_negative(self):
        counter = Counter()
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge()
        gauge.set(10.0)
        gauge.inc(2.5)
        gauge.dec()
        assert gauge.value == 11.5

    def test_histogram_buckets_and_sum(self):
        hist = Histogram(buckets=(1.0, 10.0))
        hist.observe(0.5)
        hist.observe(5.0)
        hist.observe(100.0)  # lands in the +Inf tail
        assert hist.count == 3
        assert hist.sum == 105.5
        assert hist.counts == [1, 1, 1]

    def test_histogram_cumulative_rendering(self):
        hist = Histogram(buckets=(1.0, 10.0))
        hist.observe(0.5)
        hist.observe(5.0)
        hist.observe(100.0)
        assert hist.cumulative() == [("1", 1), ("10", 2), ("+Inf", 3)]

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(10.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(buckets=())


class TestRegistry:
    """Family registration, labels, and lookup."""

    def test_unlabeled_counter_returns_instrument(self):
        registry = MetricsRegistry()
        counter = registry.counter("decisions", "decisions made")
        counter.inc(3)
        assert registry.get_value("decisions") == 3

    def test_labeled_family_children_are_distinct(self):
        registry = MetricsRegistry()
        family = registry.counter("conflicts", labels=("type",))
        family.labels(type="logic").inc(2)
        family.labels(type="bound").inc(1)
        assert registry.get_value("conflicts", type="logic") == 2
        assert registry.get_value("conflicts", type="bound") == 1

    def test_labels_must_match_declaration(self):
        registry = MetricsRegistry()
        family = registry.counter("conflicts", labels=("type",))
        with pytest.raises(ValueError):
            family.labels(wrong="x")
        with pytest.raises(ValueError):
            family.labels()

    def test_reregistration_returns_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("hits", labels=("outcome",))
        second = registry.counter("hits", labels=("outcome",))
        first.labels(outcome="hit").inc()
        second.labels(outcome="hit").inc()
        assert registry.get_value("hits", outcome="hit") == 2

    def test_conflicting_reregistration_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.counter("x", labels=("a",))

    def test_get_value_missing_returns_none(self):
        registry = MetricsRegistry()
        assert registry.get_value("nothing") is None
        registry.counter("present", labels=("k",))
        assert registry.get_value("present", k="never-touched") is None

    def test_get_value_histogram_shape(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency")
        hist.observe(0.25)
        assert registry.get_value("latency") == {"sum": 0.25, "count": 1}


class TestExposition:
    """render_text / as_dict determinism."""

    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("b_counter", "second family").inc(2)
        family = registry.counter("a_counter", "first family", labels=("kind",))
        family.labels(kind="z").inc()
        family.labels(kind="a").inc(3)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        return registry

    def test_render_text_is_deterministic_and_sorted(self):
        text_a = self._populated().render_text()
        text_b = self._populated().render_text()
        assert text_a == text_b
        # families lexicographic, label values lexicographic within
        assert text_a.index("a_counter") < text_a.index("b_counter")
        assert text_a.index('kind="a"') < text_a.index('kind="z"')

    def test_render_text_prometheus_shapes(self):
        text = self._populated().render_text()
        assert "# TYPE a_counter counter" in text
        assert '# HELP a_counter first family' in text
        assert 'a_counter{kind="a"} 3' in text
        assert 'h_bucket{le="1"} 1' in text
        assert 'h_bucket{le="+Inf"} 1' in text
        assert "h_sum 0.5" in text
        assert "h_count 1" in text
        assert text.endswith("\n")

    def test_as_dict_round_trips_values(self):
        data = self._populated().as_dict()
        assert data["b_counter"]["samples"][0]["value"] == 2
        kinds = {
            sample["labels"]["kind"]: sample["value"]
            for sample in data["a_counter"]["samples"]
        }
        assert kinds == {"a": 3, "z": 1}
        hist = data["h"]["samples"][0]
        assert hist["count"] == 1
        assert hist["buckets"][-1] == {"le": "+Inf", "count": 1}

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_text() == ""
        assert MetricsRegistry().as_dict() == {}


class TestSnapshotMerge:
    """Cross-process aggregation: snapshot() -> merge_snapshot()."""

    def test_counters_add(self):
        worker = MetricsRegistry()
        worker.counter("decisions").inc(4)
        coordinator = MetricsRegistry()
        coordinator.counter("decisions").inc(1)
        coordinator.merge_snapshot(worker.snapshot())
        assert coordinator.get_value("decisions") == 5

    def test_gauges_take_last_write(self):
        worker = MetricsRegistry()
        worker.gauge("depth").set(7)
        coordinator = MetricsRegistry()
        coordinator.gauge("depth").set(3)
        coordinator.merge_snapshot(worker.snapshot())
        assert coordinator.get_value("depth") == 7

    def test_histograms_add_binwise(self):
        worker = MetricsRegistry()
        worker.histogram("lat", buckets=(1.0,)).observe(0.5)
        coordinator = MetricsRegistry()
        coordinator.histogram("lat", buckets=(1.0,)).observe(2.0)
        coordinator.merge_snapshot(worker.snapshot())
        value = coordinator.get_value("lat")
        assert value == {"sum": 2.5, "count": 2}

    def test_merge_creates_missing_families(self):
        worker = MetricsRegistry()
        worker.counter("only_in_worker", "w", labels=("k",)).labels(k="x").inc(2)
        coordinator = MetricsRegistry()
        coordinator.merge_snapshot(worker.snapshot())
        assert coordinator.get_value("only_in_worker", k="x") == 2
        # metadata travelled too: re-registration must agree
        coordinator.counter("only_in_worker", labels=("k",))

    def test_merge_is_associative_over_workers(self):
        snaps = []
        for amount in (1, 2, 3):
            registry = MetricsRegistry()
            registry.counter("n").inc(amount)
            snaps.append(registry.snapshot())
        left = MetricsRegistry()
        for snap in snaps:
            left.merge_snapshot(snap)
        right = MetricsRegistry()
        for snap in reversed(snaps):
            right.merge_snapshot(snap)
        assert left.render_text() == right.render_text()
        assert left.get_value("n") == 6

    def test_histogram_bucket_mismatch_rejected(self):
        worker = MetricsRegistry()
        worker.histogram("lat", buckets=(1.0,)).observe(0.5)
        coordinator = MetricsRegistry()
        coordinator.histogram("lat", buckets=(1.0, 2.0)).observe(0.5)
        with pytest.raises(ValueError):
            coordinator.merge_snapshot(worker.snapshot())

    def test_snapshot_is_plain_data(self):
        import json

        registry = MetricsRegistry()
        registry.counter("c", labels=("k",)).labels(k="v").inc()
        registry.histogram("h").observe(0.1)
        json.dumps(registry.snapshot())  # must be JSON/pickle-safe


class TestNullMetrics:
    """The disabled registry is inert and branch-free to wire."""

    def test_disabled_flag(self):
        assert NULL_METRICS.enabled is False
        assert MetricsRegistry().enabled is True

    def test_instruments_accept_all_operations(self):
        counter = NULL_METRICS.counter("x", labels=("k",))
        counter.labels(k="v").inc(5)
        NULL_METRICS.gauge("g").set(3)
        NULL_METRICS.gauge("g").dec()
        NULL_METRICS.histogram("h").observe(1.0)
        assert NULL_METRICS.render_text() == ""
        assert NULL_METRICS.as_dict() == {}
        assert NULL_METRICS.snapshot() == {}
        assert NULL_METRICS.get_value("x", k="v") is None

    def test_merge_into_null_is_dropped(self):
        registry = MetricsRegistry()
        registry.counter("n").inc()
        null = NullMetricsRegistry()
        null.merge_snapshot(registry.snapshot())
        assert null.families() == []


class TestDefaultRegistry:
    """Process-wide default registry swap semantics."""

    def test_set_default_registry_swaps_and_returns_old(self):
        fresh = MetricsRegistry()
        old = set_default_registry(fresh)
        try:
            assert default_registry() is fresh
        finally:
            set_default_registry(old)
        assert default_registry() is old


class TestSolverIntegration:
    """Metrics recorded during a real solve agree with SolverStats."""

    def test_solve_records_consistent_counters(self):
        instance = parse(OPT_INSTANCE)
        registry = MetricsRegistry()
        result = solve(instance, SolverOptions(metrics=registry))
        assert result.status == "optimal"
        assert result.best_cost == 3
        assert (
            registry.get_value("solver_decisions") == result.stats.decisions
        )
        text = registry.render_text()
        assert "engine_propagations" in text
        # propagation counters carry the backend label
        assert 'backend="' in text

    def test_default_solve_records_nothing(self):
        instance = parse(OPT_INSTANCE)
        fresh = MetricsRegistry()
        old = set_default_registry(fresh)
        try:
            result = solve(instance)
            assert result.status == "optimal"
            assert fresh.render_text() == ""
        finally:
            set_default_registry(old)

    def test_lower_bound_histogram_observed(self):
        instance = parse(OPT_INSTANCE)
        registry = MetricsRegistry()
        result = solve(instance, SolverOptions(metrics=registry))
        assert result.status == "optimal"
        calls = result.stats.lower_bound_calls
        if calls:
            family = registry.as_dict().get("solver_lower_bound_seconds")
            assert family is not None
            observed = sum(sample["count"] for sample in family["samples"])
            assert observed == calls

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
