"""Unit tests for objective normalization and evaluation."""

import pytest

from repro.pb import Objective


class TestInit:
    def test_drops_zero_costs(self):
        objective = Objective({1: 0, 2: 3})
        assert objective.costs == {2: 3}

    def test_rejects_negative_cost(self):
        with pytest.raises(ValueError):
            Objective({1: -2})

    def test_rejects_bad_variable(self):
        with pytest.raises(ValueError):
            Objective({0: 1})
        with pytest.raises(ValueError):
            Objective({-3: 1})

    def test_rejects_non_integer_cost(self):
        with pytest.raises(ValueError):
            Objective({1: 1.5})


class TestFromTerms:
    def test_simple(self):
        objective = Objective.from_terms([(3, 1), (2, 2)])
        assert objective.costs == {1: 3, 2: 2}
        assert objective.offset == 0

    def test_negated_literal_folds_into_offset(self):
        # 2*~x1 == 2 - 2*x1; combined with 5*x1 gives 2 + 3*x1
        objective = Objective.from_terms([(5, 1), (2, -1)])
        assert objective.costs == {1: 3}
        assert objective.offset == 2

    def test_net_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            Objective.from_terms([(-3, 1)])

    def test_full_cancellation(self):
        objective = Objective.from_terms([(2, 1), (2, -1)])
        assert objective.costs == {}
        assert objective.offset == 2

    def test_zero_cost_skipped(self):
        assert Objective.from_terms([(0, 1)]).costs == {}

    def test_zero_literal_rejected(self):
        with pytest.raises(ValueError):
            Objective.from_terms([(1, 0)])


class TestEvaluation:
    def test_evaluate_with_offset(self):
        objective = Objective({1: 3, 2: 2}, offset=10)
        assert objective.evaluate({1: 1, 2: 0}) == 13
        assert objective.evaluate({1: 1, 2: 1}) == 15

    def test_evaluate_requires_coverage(self):
        objective = Objective({1: 3})
        with pytest.raises(ValueError):
            objective.evaluate({2: 1})

    def test_path_cost_partial(self):
        objective = Objective({1: 3, 2: 2, 3: 7}, offset=10)
        # offset excluded; only vars assigned 1 count
        assert objective.path_cost({1: 1, 2: 0}) == 3
        assert objective.path_cost({}) == 0
        assert objective.path_cost({1: 1, 3: 1}) == 10

    def test_cost_of(self):
        objective = Objective({4: 9})
        assert objective.cost_of(4) == 9
        assert objective.cost_of(1) == 0


class TestProperties:
    def test_is_constant(self):
        assert Objective({}).is_constant
        assert not Objective({1: 1}).is_constant

    def test_max_value(self):
        assert Objective({1: 3, 2: 2}).max_value == 5
        assert Objective({}).max_value == 0

    def test_variables_sorted(self):
        assert Objective({5: 1, 2: 1}).variables() == (2, 5)

    def test_equality(self):
        assert Objective({1: 2}, 3) == Objective({1: 2}, 3)
        assert Objective({1: 2}) != Objective({1: 2}, 3)

    def test_repr(self):
        assert "x1" in repr(Objective({1: 2}))
        assert "0" in repr(Objective({}))
