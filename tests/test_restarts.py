"""Tests for restart scheduling and phase saving."""

import pytest

from repro.baselines import BruteForceSolver
from repro.core import BsoloSolver, SolverOptions, OPTIMAL, UNSATISFIABLE
from repro.engine import RestartScheduler, Trail, luby
from repro.pb import Constraint, Objective, PBInstance


class TestLuby:
    def test_known_prefix(self):
        expected = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]
        assert [luby(i) for i in range(1, 16)] == expected

    def test_powers_appear(self):
        values = {luby(i) for i in range(1, 128)}
        assert {1, 2, 4, 8, 16, 32} <= values

    def test_invalid_index(self):
        with pytest.raises(ValueError):
            luby(0)


class TestRestartScheduler:
    def test_threshold_progression(self):
        scheduler = RestartScheduler(base_interval=2)
        fired = []
        for conflict in range(1, 13):
            if scheduler.on_conflict():
                fired.append(conflict)
        # luby * 2: thresholds 2, 2, 4, 2, ... -> restarts at 2, 4, 8, 10
        assert fired[0] == 2
        assert scheduler.num_restarts == len(fired) >= 3

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            RestartScheduler(base_interval=0)


class TestPhaseSaving:
    def test_saved_phase_tracks_assignments(self):
        trail = Trail(2)
        assert trail.saved_phase(1) == 0
        trail.decide(1)
        assert trail.saved_phase(1) == 1
        trail.backtrack(0)
        assert trail.saved_phase(1) == 1  # survives backtracking
        trail.decide(-1)
        assert trail.saved_phase(1) == 0


class TestSolverWithRestarts:
    def covering(self):
        return PBInstance(
            [
                Constraint.clause([1, 2]),
                Constraint.clause([2, 3]),
                Constraint.clause([1, 3]),
                Constraint.clause([-1, -2, -3]),
            ],
            Objective({1: 3, 2: 2, 3: 2}),
        )

    def test_restarts_preserve_answer(self):
        options = SolverOptions(
            lower_bound="mis", restarts=True, restart_interval=1
        )
        result = BsoloSolver(self.covering(), options).solve()
        assert result.status == OPTIMAL and result.best_cost == 4

    def test_phase_saving_preserves_answer(self):
        options = SolverOptions(lower_bound="plain", phase_saving=True)
        result = BsoloSolver(self.covering(), options).solve()
        assert result.status == OPTIMAL and result.best_cost == 4

    @pytest.mark.parametrize("seed", range(6))
    def test_random_with_both(self, seed):
        import random

        rng = random.Random(800 + seed)
        n = rng.randint(4, 6)
        constraints = []
        for _ in range(rng.randint(3, 8)):
            size = rng.randint(1, n)
            variables = rng.sample(range(1, n + 1), size)
            terms = [
                (rng.randint(1, 3), v if rng.random() < 0.6 else -v)
                for v in variables
            ]
            constraint = Constraint.greater_equal(
                terms, rng.randint(1, sum(c for c, _ in terms))
            )
            if not constraint.is_tautology and not constraint.is_unsatisfiable:
                constraints.append(constraint)
        if not constraints:
            pytest.skip("degenerate draw")
        instance = PBInstance(
            constraints,
            Objective({v: rng.randint(0, 5) for v in range(1, n + 1)}),
            num_variables=n,
        )
        expected = BruteForceSolver(instance).solve()
        options = SolverOptions(
            lower_bound="lpr",
            restarts=True,
            restart_interval=2,
            phase_saving=True,
        )
        result = BsoloSolver(instance, options).solve()
        assert result.status == expected.status
        if expected.best_cost is not None:
            assert result.best_cost == expected.best_cost
