"""Integration tests for the bsolo solver."""

import pytest

from repro.baselines.brute_force import BruteForceSolver, brute_force_optimum
from repro.core import (
    BsoloSolver,
    OPTIMAL,
    SATISFIABLE,
    SolverOptions,
    UNKNOWN,
    UNSATISFIABLE,
    solve,
)
from repro.pb import Constraint, Objective, PBInstance, PBModel

ALL_METHODS = ["plain", "mis", "lgr", "lpr"]


def covering_instance():
    """min 3a + 2b + 2c, clauses (a|b), (b|c), (a|c); optimum 4."""
    return PBInstance(
        [
            Constraint.clause([1, 2]),
            Constraint.clause([2, 3]),
            Constraint.clause([1, 3]),
        ],
        Objective({1: 3, 2: 2, 3: 2}),
    )


class TestBasicSolves:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_covering_optimum(self, method):
        result = solve(covering_instance(), SolverOptions(lower_bound=method))
        assert result.status == OPTIMAL
        assert result.best_cost == 4
        assert covering_instance().check(result.best_assignment)

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_satisfaction_instance(self, method):
        instance = PBInstance(
            [Constraint.clause([1, 2]), Constraint.clause([-1, 2])]
        )
        result = solve(instance, SolverOptions(lower_bound=method))
        assert result.status == SATISFIABLE
        assert instance.check(result.best_assignment)

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_unsatisfiable(self, method):
        instance = PBInstance(
            [
                Constraint.clause([1, 2]),
                Constraint.clause([-1, 2]),
                Constraint.clause([1, -2]),
                Constraint.clause([-1, -2]),
            ]
        )
        result = solve(instance, SolverOptions(lower_bound=method))
        assert result.status == UNSATISFIABLE

    def test_zero_cost_solution_is_optimal(self):
        instance = PBInstance([Constraint.clause([-1, 2])], Objective({1: 5}))
        result = solve(instance)
        assert result.status == OPTIMAL
        assert result.best_cost == 0

    def test_empty_instance(self):
        instance = PBInstance([], Objective({1: 3}), num_variables=1)
        result = solve(instance)
        assert result.status == OPTIMAL
        assert result.best_cost == 0

    def test_forced_cost(self):
        instance = PBInstance([Constraint.clause([1])], Objective({1: 7}))
        result = solve(instance)
        assert result.status == OPTIMAL and result.best_cost == 7

    def test_objective_offset_reported(self):
        model = PBModel()
        x = model.new_variable("x")
        model.add_clause([x])
        model.minimize([(2, x), (3, -x)])  # 3*~x folds into offset
        result = solve(model.build())
        assert result.status == OPTIMAL
        assert result.best_cost == 2  # x must be 1: cost 2 + 0

    def test_general_pb_constraints(self):
        # 2a + 3b + 4c >= 5, minimize a + 10b + 3c: best is a=0,b=0? needs
        # >=5: c alone gives 4 < 5; a+c = 6 >= 5 cost 4; b+c = 7 cost 13;
        # a+b = 5 cost 11 -> optimum 4
        instance = PBInstance(
            [Constraint.greater_equal([(2, 1), (3, 2), (4, 3)], 5)],
            Objective({1: 1, 2: 10, 3: 3}),
        )
        for method in ALL_METHODS:
            result = solve(instance, SolverOptions(lower_bound=method))
            assert result.status == OPTIMAL
            assert result.best_cost == 4


class TestAgainstBruteForce:
    @pytest.mark.parametrize("method", ALL_METHODS)
    @pytest.mark.parametrize("seed", range(15))
    def test_random_instances(self, method, seed):
        import random

        rng = random.Random(seed * 17 + 3)
        n = rng.randint(3, 7)
        constraints = []
        for _ in range(rng.randint(2, 8)):
            size = rng.randint(1, min(4, n))
            variables = rng.sample(range(1, n + 1), size)
            terms = [
                (rng.randint(1, 4), v if rng.random() < 0.6 else -v)
                for v in variables
            ]
            rhs = rng.randint(1, max(1, sum(c for c, _ in terms)))
            constraint = Constraint.greater_equal(terms, rhs)
            if not constraint.is_tautology and not constraint.is_unsatisfiable:
                constraints.append(constraint)
        objective = Objective(
            {v: rng.randint(0, 6) for v in range(1, n + 1)}
        )
        try:
            instance = PBInstance(constraints, objective, num_variables=n)
        except ValueError:
            pytest.skip("degenerate draw")
        expected = BruteForceSolver(instance).solve()
        result = solve(instance, SolverOptions(lower_bound=method))
        assert result.solved
        if expected.status == UNSATISFIABLE:
            assert result.status == UNSATISFIABLE
        else:
            assert result.status == OPTIMAL
            assert result.best_cost == expected.best_cost
            assert instance.check(result.best_assignment)
            assert instance.cost(result.best_assignment) == expected.best_cost


class TestOptionVariants:
    def test_no_bound_conflict_learning(self):
        options = SolverOptions(lower_bound="lpr", bound_conflict_learning=False)
        result = solve(covering_instance(), options)
        assert result.status == OPTIMAL and result.best_cost == 4

    def test_no_cuts(self):
        options = SolverOptions(
            lower_bound="plain", upper_bound_cuts=False, cardinality_cuts=False
        )
        result = solve(covering_instance(), options)
        assert result.status == OPTIMAL and result.best_cost == 4

    def test_no_preprocess(self):
        options = SolverOptions(preprocess=False)
        result = solve(covering_instance(), options)
        assert result.status == OPTIMAL and result.best_cost == 4

    def test_vsids_branching_only(self):
        options = SolverOptions(lower_bound="lpr", lp_guided_branching=False)
        result = solve(covering_instance(), options)
        assert result.status == OPTIMAL and result.best_cost == 4

    def test_lb_frequency(self):
        options = SolverOptions(lower_bound="lpr", lb_frequency=3)
        result = solve(covering_instance(), options)
        assert result.status == OPTIMAL and result.best_cost == 4

    def test_invalid_method_rejected(self):
        with pytest.raises(ValueError):
            SolverOptions(lower_bound="simplex")

    def test_invalid_frequency_rejected(self):
        with pytest.raises(ValueError):
            SolverOptions(lb_frequency=0)


class TestBudgets:
    def test_decision_budget_times_out(self):
        # A chain of 12 queens-ish clauses that needs some search.
        model = PBModel()
        variables = [model.new_variable() for _ in range(12)]
        for i in range(0, 12, 3):
            model.add_exactly(variables[i : i + 3], 1)
        model.minimize([(i + 1, v) for i, v in enumerate(variables)])
        options = SolverOptions(lower_bound="plain", max_decisions=1)
        result = solve(model.build(), options)
        assert result.status in (UNKNOWN, OPTIMAL)

    def test_time_limit_zero(self):
        options = SolverOptions(time_limit=0.0)
        result = solve(covering_instance(), options)
        # either solved instantly before the first budget check, or unknown
        assert result.status in (UNKNOWN, OPTIMAL)

    def test_conflict_budget(self):
        options = SolverOptions(lower_bound="plain", max_conflicts=0)
        result = solve(covering_instance(), options)
        assert result.status in (UNKNOWN, OPTIMAL)

    def test_unknown_reports_incumbent(self):
        model = PBModel()
        variables = [model.new_variable() for _ in range(16)]
        for i in range(0, 16, 4):
            model.add_exactly(variables[i : i + 4], 2)
        model.minimize([((i % 5) + 1, v) for i, v in enumerate(variables)])
        options = SolverOptions(lower_bound="plain", max_conflicts=2)
        result = solve(model.build(), options)
        if result.status == UNKNOWN and result.best_cost is not None:
            assert result.table_entry().startswith("ub ")


class TestStats:
    def test_stats_populated(self):
        solver = BsoloSolver(covering_instance(), SolverOptions(lower_bound="lpr"))
        result = solver.solve()
        assert result.stats.elapsed >= 0
        assert result.stats.solutions_found >= 1
        assert result.stats.lower_bound_calls >= 1

    def test_bound_conflicts_counted_with_lpr(self):
        # A covering instance large enough to trigger pruning.
        constraints = [
            Constraint.clause([1, 2]),
            Constraint.clause([3, 4]),
            Constraint.clause([5, 6]),
            Constraint.clause([1, 6]),
            Constraint.clause([2, 5]),
        ]
        instance = PBInstance(
            constraints, Objective({v: v for v in range(1, 7)})
        )
        solver = BsoloSolver(instance, SolverOptions(lower_bound="lpr"))
        result = solver.solve()
        assert result.status == OPTIMAL
        # the solver must at least have estimated bounds
        assert result.stats.lower_bound_calls >= 1

    def test_plain_makes_no_lb_calls(self):
        solver = BsoloSolver(covering_instance(), SolverOptions(lower_bound="plain"))
        solver.solve()
        assert solver.stats.lower_bound_calls == 0
