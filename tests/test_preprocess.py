"""Unit tests for failed-literal probing."""

from repro.core import probe_necessary_assignments
from repro.engine import Propagator
from repro.pb import Constraint


def propagator_with(n, constraints):
    prop = Propagator(n)
    for constraint in constraints:
        assert prop.add_constraint(constraint) is None
    assert prop.propagate() is None
    return prop


class TestProbing:
    def test_failed_literal_detected(self):
        # x1 -> x2 and x1 -> ~x2: probing x1 fails, so ~x1 is necessary.
        prop = propagator_with(
            2, [Constraint.clause([-1, 2]), Constraint.clause([-1, -2])]
        )
        result = probe_necessary_assignments(prop)
        assert not result.unsatisfiable
        assert -1 in result.necessary_literals
        assert prop.trail.value(1) == 0
        assert prop.trail.level(1) == 0

    def test_unsat_detected(self):
        prop = propagator_with(
            2,
            [
                Constraint.clause([1, 2]),
                Constraint.clause([1, -2]),
                Constraint.clause([-1, 2]),
                Constraint.clause([-1, -2]),
            ],
        )
        result = probe_necessary_assignments(prop)
        assert result.unsatisfiable

    def test_nothing_to_find(self):
        prop = propagator_with(2, [Constraint.clause([1, 2])])
        result = probe_necessary_assignments(prop)
        assert not result.unsatisfiable
        assert result.necessary_literals == []
        assert prop.trail.decision_level == 0
        assert len(prop.trail) == 0

    def test_cascading_rounds(self):
        # forcing x1 = 1 (via failed ~x1) then x2 = 1 via (x2 | ~x1)... the
        # second fact follows by plain propagation after the first probe.
        prop = propagator_with(
            3,
            [
                Constraint.clause([1, 2]),
                Constraint.clause([1, -2]),
                Constraint.clause([-1, 3]),
            ],
        )
        result = probe_necessary_assignments(prop)
        assert not result.unsatisfiable
        assert prop.trail.value(1) == 1
        assert prop.trail.value(3) == 1

    def test_probe_count_positive(self):
        prop = propagator_with(2, [Constraint.clause([1, 2])])
        result = probe_necessary_assignments(prop)
        assert result.probes >= 2

    def test_negative_polarity_failure(self):
        # ~x1 fails (clauses force x1): x1 necessary.
        prop = propagator_with(
            2, [Constraint.clause([1, 2]), Constraint.clause([1, -2])]
        )
        result = probe_necessary_assignments(prop)
        assert prop.trail.value(1) == 1

    def test_pb_probing(self):
        # 3*x1 + x2 + x3 >= 3 with probe ~x1: needs x2+x3 >= 3 impossible
        prop = propagator_with(
            3, [Constraint.greater_equal([(3, 1), (1, 2), (1, 3)], 3)]
        )
        result = probe_necessary_assignments(prop)
        assert prop.trail.value(1) == 1
