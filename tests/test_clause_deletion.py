"""Tests for learned-constraint database reduction."""

from repro.core import BsoloSolver, SolverOptions, OPTIMAL
from repro.engine import Propagator
from repro.pb import Constraint, Objective, PBInstance


class TestRemoveLearned:
    def test_removes_only_learned(self):
        prop = Propagator(3)
        prop.add_constraint(Constraint.clause([1, 2]))
        prop.add_constraint(Constraint.clause([1, 2, 3]), learned=True)
        removed = prop.reduce_learned(lambda stored: False)
        assert removed == 1
        assert len(prop.database) == 1
        assert not prop.database.constraints[0].learned

    def test_keep_predicate_respected(self):
        prop = Propagator(4)
        prop.add_constraint(Constraint.clause([1, 2]), learned=True)
        prop.add_constraint(Constraint.clause([1, 2, 3, 4]), learned=True)
        removed = prop.reduce_learned(lambda s: len(s.constraint) <= 2)
        assert removed == 1
        assert len(prop.database) == 1
        assert len(prop.database.constraints[0].constraint) == 2

    def test_occurrences_rebuilt(self):
        prop = Propagator(3)
        prop.add_constraint(Constraint.clause([1, 2]))
        prop.add_constraint(Constraint.clause([2, 3]), learned=True)
        prop.reduce_learned(lambda stored: False)
        # propagation still works through the kept constraint
        prop.decide(-1)
        assert prop.propagate() is None
        assert prop.trail.literal_is_true(2)
        # and the removed one no longer propagates
        assert len(prop.database.occurrences(3)) == 0

    def test_slacks_stay_consistent(self):
        prop = Propagator(3)
        prop.add_constraint(Constraint.clause([1, 2]))
        prop.add_constraint(Constraint.clause([2, 3]), learned=True)
        prop.decide(-2)
        prop.propagate()
        prop.reduce_learned(lambda stored: False)
        prop.database.check_slacks()

    def test_num_learned(self):
        prop = Propagator(2)
        prop.add_constraint(Constraint.clause([1, 2]))
        prop.add_constraint(Constraint.clause([-1, 2]), learned=True)
        assert prop.database.num_learned() == 1

    def test_noop_returns_zero(self):
        prop = Propagator(2)
        prop.add_constraint(Constraint.clause([1, 2]))
        assert prop.reduce_learned(lambda stored: True) == 0


class TestSolverIntegration:
    def test_tiny_cap_still_correct(self):
        """An aggressive cap (reduce constantly) must not change answers."""
        instance = PBInstance(
            [
                Constraint.clause([1, 2]),
                Constraint.clause([2, 3]),
                Constraint.clause([1, 3]),
                Constraint.clause([-1, -2, -3]),
            ],
            Objective({1: 3, 2: 2, 3: 2}),
        )
        options = SolverOptions(lower_bound="plain", max_learned=1)
        result = BsoloSolver(instance, options).solve()
        assert result.status == OPTIMAL
        assert result.best_cost == 4

    def test_cap_against_brute_force(self):
        import random

        from repro.baselines import BruteForceSolver

        rng = random.Random(99)
        for _ in range(5):
            n = rng.randint(4, 6)
            constraints = []
            for _ in range(rng.randint(3, 8)):
                size = rng.randint(1, n)
                variables = rng.sample(range(1, n + 1), size)
                clause = Constraint.clause(
                    [v if rng.random() < 0.5 else -v for v in variables]
                )
                constraints.append(clause)
            instance = PBInstance(
                constraints,
                Objective({v: rng.randint(0, 4) for v in range(1, n + 1)}),
                num_variables=n,
            )
            expected = BruteForceSolver(instance).solve()
            options = SolverOptions(lower_bound="mis", max_learned=2)
            result = BsoloSolver(instance, options).solve()
            assert result.status == expected.status
            if expected.best_cost is not None:
                assert result.best_cost == expected.best_cost
