"""Tests for persistent solving sessions (``repro.incremental``).

The load-bearing property is *cold-equivalence lockstep*: whatever a
warm session reports for the current effective instance under the
current assumptions, a fresh one-shot solver must report too.  The rest
of the file checks the push/pop frame lifecycle, assumption cores,
bounder-cache invalidation and the option screening.
"""

import pytest

import repro
from repro.api import solve
from repro.benchgen import (
    STREAM_BUILDERS,
    assumption_stream,
    constraint_stream,
    objective_stream,
)
from repro.core import SolverOptions
from repro.core.options import UnsupportedOptionError
from repro.core.result import OPTIMAL, UNSATISFIABLE
from repro.core.solver import BsoloSolver
from repro.incremental import SessionStats, SolverSession, make_session
from repro.pb import Constraint, InfeasibleConstraintError, Objective, PBInstance


def covering_instance():
    """min 3a + 2b + 2c, clauses (a|b), (b|c), (a|c); optimum 4."""
    return PBInstance(
        [
            Constraint.clause([1, 2]),
            Constraint.clause([2, 3]),
            Constraint.clause([1, 3]),
        ],
        Objective({1: 3, 2: 2, 3: 2}),
    )


def options(**overrides):
    """Session-friendly options (bounded, deterministic)."""
    base = dict(preprocess=False, covering_reductions=False)
    base.update(overrides)
    return SolverOptions(**base)


class TestSessionBasics:
    def test_repeated_solves_match_one_shot(self):
        session = make_session(covering_instance(), options())
        for _ in range(3):
            result = session.solve()
            assert result.status == OPTIMAL
            assert result.best_cost == 4
        assert session.stats.calls == 3

    def test_model_never_contains_guard_variable(self):
        session = make_session(covering_instance(), options())
        result = session.solve()
        assert set(result.model) <= {1, 2, 3}
        assert session.guard_var == 4

    def test_solve_under_respects_assumptions(self):
        session = make_session(covering_instance(), options())
        unconstrained = session.solve()
        assert unconstrained.best_cost == 4
        forced = session.solve_under([1])  # force the expensive variable
        assert forced.status == OPTIMAL
        assert forced.model[1] == 1
        assert forced.best_cost == 5  # a=3 plus one of b/c
        # the session is not poisoned by the previous assumptions
        assert session.solve().best_cost == 4

    def test_contradictory_assumptions_report_a_core(self):
        session = make_session(covering_instance(), options())
        result = session.solve_under([2, -2])
        assert result.status == UNSATISFIABLE
        assert result.core == (2, -2)
        # a prefix core: the contradiction needs both literals
        assert session.solve().status == OPTIMAL

    def test_assumption_conflicting_with_instance(self):
        # ~b forces both a and c through the clauses; also assume ~a.
        session = make_session(covering_instance(), options())
        result = session.solve_under([-2, -1])
        assert result.status == UNSATISFIABLE
        assert result.core == (-2, -1)

    def test_upper_bound_hint_keeps_lockstep(self):
        session = make_session(covering_instance(), options())
        hinted = session.solve_under((), upper_bound=5)
        assert hinted.status == OPTIMAL and hinted.best_cost == 4
        # a hint at the optimum: nothing better exists locally, so the
        # imported incumbent is confirmed optimal (its model lives with
        # whoever published the bound)
        confirmed = session.solve_under((), upper_bound=4)
        assert confirmed.status == OPTIMAL
        assert confirmed.best_cost == 4
        assert confirmed.best_assignment is None
        # and the hint must not leak into later calls
        later = session.solve()
        assert later.best_cost == 4 and later.best_assignment is not None

    def test_out_of_range_assumption_rejected(self):
        session = make_session(covering_instance(), options())
        with pytest.raises(ValueError):
            session.solve_under([99])
        assert session.solve().status == OPTIMAL  # still usable

    def test_stats_snapshot(self):
        session = make_session(covering_instance(), options())
        session.solve()
        snapshot = session.stats.as_dict()
        assert snapshot["calls"] == 1
        assert set(snapshot) == set(SessionStats.__slots__)


class TestFrames:
    def test_push_add_pop_restores_instance(self):
        session = make_session(covering_instance(), options())
        base = session.solve().best_cost
        session.push()
        session.add_constraint(Constraint.clause([-2]))  # outlaw b
        assert session.depth == 1
        constrained = session.solve()
        assert constrained.best_cost == 5  # a + c
        session.pop()
        assert session.depth == 0
        assert session.solve().best_cost == base
        assert len(session.instance.constraints) == 3

    def test_nested_frames_pop_in_order(self):
        session = make_session(covering_instance(), options())
        session.push()
        session.add_constraint(Constraint.clause([-1]))  # outlaw a
        session.push()
        session.add_constraint(Constraint.clause([-3]))  # outlaw c too
        assert session.solve().status == UNSATISFIABLE
        session.pop()
        assert session.solve().best_cost == 4  # b + c
        session.pop()
        assert session.solve().best_cost == 4

    def test_pop_without_push_raises(self):
        session = make_session(covering_instance(), options())
        with pytest.raises(ValueError):
            session.pop()

    def test_add_constraint_validations(self):
        session = make_session(covering_instance(), options())
        with pytest.raises(InfeasibleConstraintError):
            session.add_constraint(Constraint.greater_equal([(1, 1)], 5))
        with pytest.raises(ValueError):
            session.add_constraint(Constraint.clause([9]))
        # tautologies are silently dropped, as PBInstance would
        session.add_constraint(Constraint.greater_equal([(1, 1), (1, -1)], 1))
        assert len(session.instance.constraints) == 3

    def test_pop_deletes_frame_learned_clauses(self):
        session = make_session(covering_instance(), options())
        session.push()
        session.add_constraint(Constraint.clause([-2]))
        session.solve()
        database = session.propagator.database
        session.pop()
        # nothing learned while the frame was open survives it
        leftover = [s for s in database.constraints if s.learned]
        assert leftover == []
        assert session.stats.learned_retained == 0

    def test_pop_invalidates_bounder_caches(self):
        session = make_session(
            covering_instance(), options(lower_bound="hybrid")
        )
        before = (session.prefilter, session.bounder)
        session.push()
        session.add_constraint(Constraint.clause([-2]))
        after_add = (session.prefilter, session.bounder)
        assert before[0] is not after_add[0]
        assert before[1] is not after_add[1]
        session.pop()
        after_pop = (session.prefilter, session.bounder)
        assert after_add[0] is not after_pop[0]
        assert after_add[1] is not after_pop[1]

    def test_set_objective_changes_optimum(self):
        session = make_session(covering_instance(), options())
        assert session.solve().best_cost == 4
        session.set_objective({1: 1, 2: 10, 3: 1})
        repriced = session.solve()
        assert repriced.best_cost == 2  # a + c
        session.set_objective(Objective({1: 3, 2: 2, 3: 2}))
        assert session.solve().best_cost == 4

    def test_set_objective_out_of_range_rejected(self):
        session = make_session(covering_instance(), options())
        with pytest.raises(ValueError):
            session.set_objective({7: 1})


class TestOptionScreening:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("proof", "proof.log"),
            ("external_bound", lambda: None),
            ("should_stop", lambda: False),
        ],
    )
    def test_per_solve_options_rejected(self, field, value):
        with pytest.raises(UnsupportedOptionError):
            make_session(covering_instance(), SolverOptions(**{field: value}))

    def test_root_asserting_options_forced_off(self):
        session = make_session(
            covering_instance(),
            SolverOptions(preprocess=True, covering_reductions=True),
        )
        assert session.solve().best_cost == 4


class TestLockstepStreams:
    """Cold-equivalence over the benchgen perturbation streams: every
    step of a warm session must match a fresh one-shot solver on the
    materialised instance."""

    @pytest.mark.parametrize("family", sorted(STREAM_BUILDERS))
    @pytest.mark.parametrize("seed", [11, 12])
    def test_stream_lockstep(self, family, seed):
        builder = STREAM_BUILDERS[family]
        stream = builder(
            num_variables=12, num_constraints=18, steps=6, seed=seed
        )
        opts = options(lower_bound="hybrid")
        session = make_session(stream.instance, opts)
        for index, step in enumerate(stream.steps):
            if step.pop:
                session.pop()
            if step.push is not None:
                session.push()
                session.add_constraint(step.push)
            if step.objective is not None:
                session.set_objective(step.objective)
            warm = session.solve_under(step.assumptions)
            effective, assumptions = stream.materialize(index)
            cold = BsoloSolver(effective, opts)
            cold.set_assumptions(list(assumptions))
            reference = cold.solve()
            assert (warm.status, warm.best_cost) == (
                reference.status,
                reference.best_cost,
            ), "lockstep diverged at step %d of %s stream" % (index, family)

    @pytest.mark.parametrize("engine", ["counter", "watched", "array"])
    def test_lockstep_across_engines(self, engine):
        stream = assumption_stream(
            num_variables=10, num_constraints=16, steps=5, seed=3
        )
        opts = options(propagation=engine, lower_bound="mis")
        session = make_session(stream.instance, opts)
        for index, step in enumerate(stream.steps):
            warm = session.solve_under(step.assumptions)
            effective, assumptions = stream.materialize(index)
            cold = BsoloSolver(effective, opts)
            cold.set_assumptions(list(assumptions))
            reference = cold.solve()
            assert (warm.status, warm.best_cost) == (
                reference.status,
                reference.best_cost,
            )


class TestStreamGenerators:
    def test_materialize_tracks_frames(self):
        stream = constraint_stream(
            num_variables=10, num_constraints=14, steps=8, seed=5
        )
        base = len(stream.instance.constraints)
        depth = 0
        live = 0
        stack = []
        for index, step in enumerate(stream.steps):
            if step.pop:
                depth -= 1
                live = stack.pop()
            if step.push is not None:
                stack.append(live)
                live += 1
                depth += 1
            effective, _ = stream.materialize(index)
            assert len(effective.constraints) == base + live
        assert depth >= 0

    def test_objective_stream_varies_costs(self):
        stream = objective_stream(
            num_variables=10, num_constraints=14, steps=5, seed=5
        )
        objectives = [
            step.objective for step in stream.steps if step.objective
        ]
        assert len(objectives) == len(stream.steps)
        assert any(o != objectives[0] for o in objectives[1:])

    def test_streams_deterministic_under_seed(self):
        first = assumption_stream(seed=9)
        second = assumption_stream(seed=9)
        assert [s.assumptions for s in first.steps] == [
            s.assumptions for s in second.steps
        ]


class TestReentrancy:
    def test_mutation_inside_call_rejected(self):
        session = make_session(covering_instance(), options())
        session._in_call = True  # simulate a mid-solve callback
        try:
            with pytest.raises(RuntimeError):
                session.push()
            with pytest.raises(RuntimeError):
                session.add_constraint(Constraint.clause([1]))
            with pytest.raises(RuntimeError):
                session.solve()
        finally:
            session._in_call = False
        assert session.solve().status == OPTIMAL


class TestPackageSurface:
    def test_reexports(self):
        assert repro.SolverSession is SolverSession
        assert repro.make_session is make_session
        assert repro.UnsupportedOptionError is UnsupportedOptionError

    def test_session_matches_api_solve(self):
        instance = covering_instance()
        session = make_session(instance, options())
        assert (
            session.solve().best_cost
            == solve(instance, options=options()).best_cost
        )
