"""Unit tests for the assignment trail."""

import pytest

from repro.engine import Trail, UNASSIGNED


class TestBasics:
    def test_initially_unassigned(self):
        trail = Trail(3)
        assert trail.decision_level == 0
        assert all(trail.value(v) == UNASSIGNED for v in (1, 2, 3))
        assert not trail.is_assigned(1)
        assert len(trail) == 0

    def test_decide_opens_level(self):
        trail = Trail(3)
        trail.decide(2)
        assert trail.decision_level == 1
        assert trail.value(2) == 1
        assert trail.level(2) == 1
        assert trail.reason(2) is None
        assert trail.decision_at(1) == 2

    def test_negative_literal_decision(self):
        trail = Trail(3)
        trail.decide(-3)
        assert trail.value(3) == 0
        assert trail.literal_is_true(-3)
        assert trail.literal_is_false(3)

    def test_imply_keeps_level(self):
        trail = Trail(3)
        trail.decide(1)
        trail.imply(-2, (-2, -1))
        assert trail.decision_level == 1
        assert trail.level(2) == 1
        assert trail.reason(2) == (-2, -1)

    def test_assume_at_root(self):
        trail = Trail(3)
        trail.assume(1)
        assert trail.level(1) == 0
        trail.decide(2)
        with pytest.raises(ValueError):
            trail.assume(3)

    def test_double_assignment_rejected(self):
        trail = Trail(3)
        trail.decide(1)
        with pytest.raises(ValueError):
            trail.decide(-1)
        with pytest.raises(ValueError):
            trail.imply(1, (1,))


class TestQueries:
    def test_literal_truth(self):
        trail = Trail(2)
        trail.decide(1)
        assert trail.literal_is_true(1)
        assert trail.literal_is_false(-1)
        assert not trail.literal_is_true(2)
        assert not trail.literal_is_false(2)

    def test_assignment_snapshot(self):
        trail = Trail(3)
        trail.decide(1)
        trail.imply(-3, (-3, -1))
        assert trail.assignment() == {1: 1, 3: 0}

    def test_all_assigned(self):
        trail = Trail(2)
        trail.decide(1)
        assert not trail.all_assigned()
        trail.imply(2, (2, -1))
        assert trail.all_assigned()

    def test_unassigned_variables(self):
        trail = Trail(3)
        trail.decide(2)
        assert trail.unassigned_variables() == [1, 3]

    def test_decision_at_bad_level(self):
        trail = Trail(2)
        with pytest.raises(ValueError):
            trail.decision_at(1)


class TestBacktrack:
    def test_undoes_assignments(self):
        trail = Trail(4)
        trail.decide(1)
        trail.imply(2, (2, -1))
        trail.decide(3)
        trail.imply(4, (4, -3))
        undone = trail.backtrack(1)
        assert undone == [4, 3]
        assert trail.decision_level == 1
        assert trail.value(1) == 1 and trail.value(2) == 1
        assert not trail.is_assigned(3) and not trail.is_assigned(4)

    def test_backtrack_to_root(self):
        trail = Trail(2)
        trail.decide(1)
        trail.decide(2)
        trail.backtrack(0)
        assert trail.decision_level == 0
        assert len(trail) == 0

    def test_backtrack_same_level_noop(self):
        trail = Trail(2)
        trail.decide(1)
        assert trail.backtrack(1) == []
        assert trail.value(1) == 1

    def test_backtrack_preserves_root_assignments(self):
        trail = Trail(2)
        trail.assume(1)
        trail.decide(2)
        trail.backtrack(0)
        assert trail.value(1) == 1

    def test_invalid_target_rejected(self):
        trail = Trail(2)
        with pytest.raises(ValueError):
            trail.backtrack(1)
        with pytest.raises(ValueError):
            trail.backtrack(-1)

    def test_reassignment_after_backtrack(self):
        trail = Trail(2)
        trail.decide(1)
        trail.backtrack(0)
        trail.decide(-1)
        assert trail.value(1) == 0
