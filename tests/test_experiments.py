"""Tests for the experiment harness (runner, table1, reporting)."""

import json

import pytest

from repro.experiments import (
    BSOLO_NAMES,
    FAMILIES,
    SOLVER_NAMES,
    family_instances,
    format_matrix,
    format_table1,
    generate_table1,
    make_solver,
    run_matrix,
    run_one,
    solved_counts,
    write_records_jsonl,
)
from repro.pb import Constraint, Objective, PBInstance


def tiny_instance():
    return PBInstance(
        [Constraint.clause([1, 2]), Constraint.clause([-1, 2])],
        Objective({1: 2, 2: 1}),
    )


class TestRegistry:
    @pytest.mark.parametrize("name", SOLVER_NAMES)
    def test_all_solvers_constructible(self, name):
        solver = make_solver(name, tiny_instance(), time_limit=5.0)
        assert hasattr(solver, "solve")

    def test_unknown_solver_rejected(self):
        with pytest.raises(ValueError):
            make_solver("minisat", tiny_instance(), None)

    @pytest.mark.parametrize("name", SOLVER_NAMES)
    def test_all_solvers_agree_on_tiny(self, name):
        record = run_one(name, tiny_instance(), "tiny", 5.0)
        assert record.solved
        assert record.result.best_cost == 1  # x2 alone


class TestRunRecords:
    def test_cell_formats(self):
        record = run_one("bsolo-lpr", tiny_instance(), "tiny", 5.0)
        cell = record.cell()
        assert cell.replace(".", "").isdigit()

    def test_matrix_and_counts(self):
        instances = [tiny_instance(), tiny_instance()]
        records = run_matrix(
            instances, ["a", "b"], solver_names=["pbs", "bsolo-lpr"], time_limit=5.0
        )
        assert set(records) == {"pbs", "bsolo-lpr"}
        assert len(records["pbs"]) == 2
        counts = solved_counts(records)
        assert counts == {"pbs": 2, "bsolo-lpr": 2}


class TestFamilies:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_family_instances(self, family):
        instances, labels = family_instances(family, count=2, scale=0.4)
        assert len(instances) == 2 and len(labels) == 2
        assert all(label.startswith(family.split("-")[0][:3]) for label in labels)

    def test_unknown_family(self):
        with pytest.raises(ValueError):
            family_instances("espresso")

    def test_acc_family_is_satisfaction(self):
        instances, _ = family_instances("acc", count=1, scale=0.4)
        assert instances[0].is_satisfaction

    def test_scale_changes_size(self):
        small, _ = family_instances("ptl", count=1, scale=0.3)
        large, _ = family_instances("ptl", count=1, scale=0.8)
        assert large[0].num_variables > small[0].num_variables


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        # miniature matrix: tiny instances, 2 solvers would break the
        # summary helpers, so use all bsolo + pbs at scale 0.3
        return generate_table1(
            time_limit=3.0,
            count=1,
            scale=0.3,
            families=("grout", "acc"),
        )

    def test_structure(self, result):
        assert set(result.per_family) == {"grout", "acc"}
        totals = result.solved_by_solver()
        assert set(totals) == set(SOLVER_NAMES)

    def test_formatting(self, result):
        text = format_table1(result)
        assert "#Solved" in text
        assert "grout-1" in text and "acc-1" in text
        assert "SAT" in text  # acc rows are pure satisfaction

    def test_solved_by_family(self, result):
        by_family = result.solved_by_family("bsolo-lpr")
        assert set(by_family) == {"grout", "acc"}

    def test_acc_identical(self, result):
        assert result.acc_rows_identical_for_bsolo()

    def test_matrix_formatting_direct(self, result):
        text = format_matrix(result.per_family["grout"], SOLVER_NAMES)
        assert "Benchmark" in text

    def test_matrix_empty_inputs_return_empty_string(self, result):
        # regression: used to raise IndexError on empty solver_names
        assert format_matrix(result.per_family["grout"], []) == ""
        assert format_matrix([], SOLVER_NAMES) == ""
        assert format_matrix([], []) == ""

    def test_write_records_jsonl_round_trip(self, result, tmp_path):
        path = str(tmp_path / "runs.jsonl")
        written = write_records_jsonl(
            result.per_family["grout"], path, extra={"family": "grout"}
        )
        with open(path) as handle:
            rows = [json.loads(line) for line in handle]
        assert len(rows) == written > 0
        assert all(row["family"] == "grout" for row in rows)
        assert {"solver", "instance", "status", "seconds", "stats"} <= set(
            rows[0]
        )
        appended = write_records_jsonl(
            result.per_family["acc"], path, extra={"family": "acc"}, append=True
        )
        with open(path) as handle:
            rows = [json.loads(line) for line in handle]
        assert len(rows) == written + appended

    def test_dump_stats_jsonl(self, result, tmp_path):
        path = str(tmp_path / "table1.jsonl")
        written = result.dump_stats_jsonl(path)
        with open(path) as handle:
            rows = [json.loads(line) for line in handle]
        assert len(rows) == written > 0
        assert {row["family"] for row in rows} == {"grout", "acc"}
