"""Tests for the parallel portfolio (``repro.portfolio``).

The cooperative-interrupt and incumbent-import protocol is tested
in-process (deterministically, no forking); the process-parallel runner
is tested end-to-end on small instances with generous time budgets.
"""

import time

import pytest

from repro import solve, solve_portfolio
from repro.api import register_solver
from repro.baselines.linear_search import LinearSearchSolver
from repro.benchgen.ptl import ptl_suite
from repro.benchgen.synthesis import covering_suite
from repro.core import (
    BsoloSolver,
    OPTIMAL,
    SolverOptions,
    SolverStats,
    UNKNOWN,
)
from repro.pb import Constraint, Objective, PBInstance
from repro.portfolio import (
    PortfolioSolver,
    PortfolioStats,
    WorkerSpec,
    default_specs,
)


def covering_instance():
    """min 3a + 2b + 2c, clauses (a|b), (b|c), (a|c); optimum 4."""
    return PBInstance(
        [
            Constraint.clause([1, 2]),
            Constraint.clause([2, 3]),
            Constraint.clause([1, 3]),
        ],
        Objective({1: 3, 2: 2, 3: 2}),
    )


def non_covering_instance():
    """Cardinality constraint makes this invalid for covering-bnb."""
    return PBInstance(
        [
            Constraint.at_least([1, 2, 3], 2),
            Constraint.clause([1, 3]),
        ],
        Objective({1: 3, 2: 2, 3: 2}),
    )


# ----------------------------------------------------------------------
# Cooperative hooks, in-process (deterministic)
# ----------------------------------------------------------------------
class TestCooperativeHooks:
    def test_external_bound_gives_optimal_without_model(self):
        # another worker already holds a cost-4 incumbent; this solver
        # exhausts its search under the imported bound and reports the
        # proven optimum — the witnessing model lives with the publisher
        options = SolverOptions(external_bound=lambda: 4, poll_interval=1)
        result = BsoloSolver(covering_instance(), options).solve()
        assert result.status == OPTIMAL
        assert result.best_cost == 4
        assert result.model is None
        assert result.stats.external_bounds >= 1

    def test_loose_external_bound_keeps_local_model(self):
        # an imported bound above the optimum must not steal the witness
        options = SolverOptions(external_bound=lambda: 6, poll_interval=1)
        result = BsoloSolver(covering_instance(), options).solve()
        assert result.status == OPTIMAL
        assert result.best_cost == 4
        assert covering_instance().check(result.model)

    def test_should_stop_interrupts(self):
        options = SolverOptions(should_stop=lambda: True, poll_interval=1)
        result = BsoloSolver(covering_instance(), options).solve()
        assert result.status == UNKNOWN
        assert result.stats.interrupted

    def test_on_incumbent_reports_improving_costs(self):
        seen = []
        options = SolverOptions(
            on_incumbent=lambda cost, model: seen.append((cost, model))
        )
        result = BsoloSolver(covering_instance(), options).solve()
        assert result.status == OPTIMAL
        costs = [cost for cost, _ in seen]
        assert costs == sorted(costs, reverse=True)  # strictly improving
        assert costs[-1] == 4
        for cost, model in seen:
            assert covering_instance().check(model)

    def test_linear_search_honours_the_same_protocol(self):
        options = SolverOptions(external_bound=lambda: 4, poll_interval=1)
        result = LinearSearchSolver(covering_instance(), options).solve()
        assert result.status == OPTIMAL
        assert result.best_cost == 4
        stopped = LinearSearchSolver(
            covering_instance(), SolverOptions(should_stop=lambda: True)
        ).solve()
        assert stopped.status == UNKNOWN
        assert stopped.stats.interrupted


# ----------------------------------------------------------------------
# Worker specs
# ----------------------------------------------------------------------
class TestWorkerSpecs:
    def test_default_specs_sized_and_unique(self):
        specs = default_specs(4)
        assert len(specs) == 4
        labels = [spec.label for spec in specs]
        assert len(set(labels)) == 4

    def test_default_specs_cycle_with_perturbation(self):
        specs = default_specs(11)
        assert len(specs) == 11
        # rung 0 and its second-lap repeat use the same solver but
        # perturbed heuristics, so the searches diverge
        assert specs[9].solver == specs[0].solver
        base = specs[0].options or SolverOptions()
        assert specs[9].options.vsids_decay < base.vsids_decay

    def test_default_specs_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            default_specs(0)

    @pytest.mark.parametrize("field", ["tracer", "should_stop", "on_incumbent"])
    def test_spec_rejects_process_local_options(self, field):
        with pytest.raises(ValueError):
            WorkerSpec("bsolo", SolverOptions(**{field: lambda *a: None}))

    def test_spec_accepts_plain_options(self):
        spec = WorkerSpec("bsolo-mis", SolverOptions(restarts=True), label="w0")
        assert spec.solver == "bsolo-mis"
        assert spec.label == "w0"


# ----------------------------------------------------------------------
# Portfolio stats aggregation
# ----------------------------------------------------------------------
class TestPortfolioStats:
    def test_counters_sum_over_workers(self):
        stats = PortfolioStats()
        one, two = SolverStats(), SolverStats()
        one.decisions, two.decisions = 10, 32
        one.external_bounds = 2
        stats.add_worker_result("a@0", "bsolo", OPTIMAL, 4, 0.5, one.as_dict())
        stats.add_worker_result("b@1", "milp", UNKNOWN, None, 0.7, two.as_dict())
        assert stats.decisions == 42
        assert stats.external_bounds == 2
        assert len(stats.workers) == 2

    def test_failures_and_dict_shape(self):
        stats = PortfolioStats()
        stats.add_worker_failure("c@2", "milp", "boom")
        stats.winner = "a@0"
        data = stats.as_dict()
        assert stats.failures == 1
        assert data["portfolio"]["failures"] == 1
        assert data["portfolio"]["winner"] == "a@0"
        assert data["portfolio"]["workers"][0]["status"] == "failed"


# ----------------------------------------------------------------------
# End-to-end process-parallel runs
# ----------------------------------------------------------------------
class TestPortfolioRuns:
    def test_matches_sequential_bsolo_on_seed_instances(self):
        instances = [covering_instance()]
        instances += covering_suite(
            count=2, minterms=30, implicants=16, density=0.2, max_cost=60
        )
        for instance in instances:
            reference = solve(instance, solver="bsolo-lpr", timeout=60.0)
            assert reference.status == OPTIMAL
            result = solve_portfolio(instance, workers=4, time_limit=60.0)
            assert result.status == OPTIMAL
            assert result.best_cost == reference.best_cost
            assert instance.check(result.model)
            assert result.stats.winner is not None

    def test_portfolio_through_facade(self):
        result = solve(covering_instance(), solver="portfolio", timeout=60.0)
        assert result.status == OPTIMAL and result.best_cost == 4

    def test_incumbent_exchange_happens(self):
        instance = covering_suite(
            count=1, minterms=30, implicants=16, density=0.2, max_cost=60
        )[0]
        solver = PortfolioSolver(instance, workers=4, time_limit=60.0)
        result = solver.solve()
        assert result.status == OPTIMAL
        assert solver.stats.incumbents_shared > 0

    def test_worker_crash_at_construction_is_tolerated(self):
        # covering-bnb refuses non-covering instances; the portfolio
        # records the failure and degrades to the surviving worker
        instance = non_covering_instance()
        specs = [WorkerSpec("covering-bnb"), WorkerSpec("bsolo-lpr")]
        solver = PortfolioSolver(instance, specs=specs, time_limit=60.0)
        result = solver.solve()
        assert result.status == OPTIMAL
        assert instance.check(result.model)
        assert solver.stats.failures == 1
        failed = [w for w in solver.stats.workers if w["status"] == "failed"]
        assert len(failed) == 1 and failed[0]["solver"] == "covering-bnb"

    def test_worker_crash_mid_run_is_tolerated(self):
        class _MidRunCrasher:
            name = "crasher"
            stats = SolverStats()

            def __init__(self, instance, options=None):
                pass

            def solve(self):
                time.sleep(0.1)
                raise RuntimeError("deliberate mid-run crash")

        # fork start method inherits the parent's registry, so the
        # test-only registration is visible inside the worker process
        register_solver("test-midrun-crasher", _MidRunCrasher)
        try:
            specs = [WorkerSpec("test-midrun-crasher"), WorkerSpec("bsolo-lpr")]
            solver = PortfolioSolver(
                covering_instance(), specs=specs, time_limit=60.0
            )
            result = solver.solve()
            assert result.status == OPTIMAL
            assert result.best_cost == 4
            assert solver.stats.failures == 1
        finally:
            from repro.api import _REGISTRY

            _REGISTRY.pop("test-midrun-crasher", None)

    def test_all_workers_failing_degrades_to_unknown(self):
        instance = non_covering_instance()
        specs = [WorkerSpec("covering-bnb", label="a"),
                 WorkerSpec("covering-bnb", label="b")]
        solver = PortfolioSolver(instance, specs=specs, time_limit=60.0)
        result = solver.solve()
        assert result.status == UNKNOWN
        assert solver.stats.failures == 2

    def test_deadline_respected(self):
        # hard enough that no worker finishes; the portfolio must come
        # back at its deadline plus the wind-down grace, not at the
        # workers' convenience
        instance = ptl_suite(count=1, nodes=24, extra_edges=12)[0]
        start = time.monotonic()
        solver = PortfolioSolver(
            instance, workers=4, time_limit=1.0, grace=1.0
        )
        result = solver.solve()
        wall = time.monotonic() - start
        assert wall < 8.0  # 1s budget + 1s grace + fork/terminate slack
        assert result.status == UNKNOWN
        # incumbents found before the deadline still surface as an ub
        if result.best_cost is not None:
            assert instance.check(result.model)

    def test_faster_than_slowest_member_alone(self):
        # acceptance demo: on the ptl family bsolo-plain (no lower
        # bounding) cannot prove optimality in the time the 4-worker
        # portfolio needs to finish the whole job
        instance = ptl_suite(count=1, nodes=18, extra_edges=9)[0]
        specs = [
            WorkerSpec("bsolo-plain"),
            WorkerSpec("bsolo-lpr"),
            WorkerSpec("linear-search"),
            WorkerSpec("bsolo-mis"),
        ]
        start = time.monotonic()
        solver = PortfolioSolver(instance, specs=specs, time_limit=60.0)
        result = solver.solve()
        portfolio_seconds = time.monotonic() - start
        assert result.status == OPTIMAL
        assert instance.check(result.model)
        assert portfolio_seconds < 60.0
        alone = solve(
            instance, solver="bsolo-plain", timeout=portfolio_seconds
        )
        assert alone.status != OPTIMAL
