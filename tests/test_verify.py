"""Tests for independent result verification."""

import pytest

from repro.core import (
    BsoloSolver,
    SolveResult,
    SolverOptions,
    VerificationError,
    VerifyOutcome,
    solve,
    verify_result,
)
from repro.core.result import OPTIMAL, SATISFIABLE, UNKNOWN, UNSATISFIABLE
from repro.pb import Constraint, Objective, PBInstance


def covering_instance():
    return PBInstance(
        [
            Constraint.clause([1, 2]),
            Constraint.clause([2, 3]),
            Constraint.clause([1, 3]),
        ],
        Objective({1: 3, 2: 2, 3: 2}),
    )


class TestHappyPaths:
    def test_optimal_verifies(self):
        instance = covering_instance()
        result = solve(instance)
        outcome = verify_result(instance, result)
        assert outcome
        assert outcome.verified
        assert outcome.status == VerifyOutcome.VERIFIED
        assert "optimality" in outcome.checks

    def test_satisfiable_verifies(self):
        instance = PBInstance([Constraint.clause([1, 2])])
        result = solve(instance)
        assert verify_result(instance, result)

    def test_unsat_verifies(self):
        instance = PBInstance(
            [
                Constraint.clause([1, 2]),
                Constraint.clause([-1, 2]),
                Constraint.clause([1, -2]),
                Constraint.clause([-1, -2]),
            ]
        )
        result = solve(instance)
        outcome = verify_result(instance, result)
        assert outcome.verified
        assert outcome.checks == ("unsatisfiability",)

    def test_zero_cost_optimum(self):
        instance = PBInstance([Constraint.clause([-1])], Objective({1: 5}))
        result = solve(instance)
        assert result.best_cost == 0
        assert verify_result(instance, result)

    def test_unknown_passes_with_feasibility_only(self):
        instance = covering_instance()
        fake = SolveResult(
            UNKNOWN, best_cost=5, best_assignment={1: 1, 2: 1, 3: 0}
        )
        assert verify_result(instance, fake)


class TestDetection:
    def test_infeasible_assignment_rejected(self):
        instance = covering_instance()
        fake = SolveResult(
            OPTIMAL, best_cost=2, best_assignment={1: 0, 2: 1, 3: 0}
        )
        with pytest.raises(VerificationError):
            verify_result(instance, fake)

    def test_wrong_cost_rejected(self):
        instance = covering_instance()
        fake = SolveResult(
            OPTIMAL, best_cost=3, best_assignment={1: 0, 2: 1, 3: 1}
        )
        with pytest.raises(VerificationError):
            verify_result(instance, fake)

    def test_suboptimal_claim_rejected(self):
        instance = covering_instance()
        # cost 7 solution claimed optimal; true optimum is 4
        fake = SolveResult(
            OPTIMAL, best_cost=7, best_assignment={1: 1, 2: 2 // 2, 3: 1}
        )
        fake.best_assignment = {1: 1, 2: 1, 3: 1}
        with pytest.raises(VerificationError):
            verify_result(instance, fake)

    def test_false_unsat_rejected(self):
        instance = covering_instance()
        fake = SolveResult(UNSATISFIABLE)
        with pytest.raises(VerificationError):
            verify_result(instance, fake)

    def test_missing_assignment_rejected(self):
        instance = covering_instance()
        fake = SolveResult(OPTIMAL, best_cost=4, best_assignment=None)
        with pytest.raises(VerificationError):
            verify_result(instance, fake)

    def test_partial_assignment_rejected(self):
        instance = covering_instance()
        fake = SolveResult(OPTIMAL, best_cost=4, best_assignment={2: 1})
        with pytest.raises(VerificationError):
            verify_result(instance, fake)


class TestCustomProver:
    def test_prover_injection(self):
        instance = covering_instance()
        result = solve(instance)

        def bsolo_prover(subinstance, time_limit):
            return BsoloSolver(
                subinstance, SolverOptions(lower_bound="mis", time_limit=time_limit)
            ).solve()

        assert verify_result(instance, result, prover=bsolo_prover)

    def test_prover_budget_exhaustion_reported_as_unverified(self):
        instance = covering_instance()
        result = solve(instance)

        def lazy_prover(subinstance, time_limit):
            return SolveResult(UNKNOWN)

        outcome = verify_result(instance, result, prover=lazy_prover)
        assert outcome  # truthy for back-compat: nothing failed
        assert not outcome.verified
        assert outcome.status == VerifyOutcome.UNVERIFIED
        assert "optimality" not in outcome.checks
        assert "feasibility" in outcome.checks
        assert "unknown" in outcome.detail

    def test_prover_budget_exhaustion_on_unsat_is_unverified(self):
        instance = PBInstance(
            [
                Constraint.clause([1, 2]),
                Constraint.clause([-1, 2]),
                Constraint.clause([1, -2]),
                Constraint.clause([-1, -2]),
            ]
        )
        result = solve(instance)

        def lazy_prover(subinstance, time_limit):
            return SolveResult(UNKNOWN)

        outcome = verify_result(instance, result, prover=lazy_prover)
        assert outcome
        assert not outcome.verified
        assert "unsatisfiability" in outcome.detail


class TestDifferential:
    """Differential fuzzing: every solver's verified on random instances."""

    @pytest.mark.parametrize("seed", range(10))
    def test_all_solvers_verified(self, seed):
        from repro.benchgen import generate_random
        from repro.experiments import SOLVER_NAMES, run_one

        instance = generate_random(
            num_variables=6, num_constraints=7, seed=900 + seed
        )
        for name in SOLVER_NAMES:
            record = run_one(name, instance, "fuzz", time_limit=10.0)
            assert record.solved, name
            outcome = verify_result(instance, record.result)
            # distinguish "checked and certified" from "prover gave up"
            assert outcome.verified, (name, outcome)
