"""Differential stress tests: all solvers, all option mixes, one oracle.

Each case generates a random instance (general PB constraints, mixed
polarities, occasional zero-cost variables), solves it with every
registered solver and several bsolo option combinations, and checks every
conclusive answer against the brute-force oracle and the independent
verifier.
"""

import random

import pytest

from repro.baselines import BruteForceSolver
from repro.benchgen import generate_planted, generate_random
from repro.core import (
    BsoloSolver,
    SolverOptions,
    UNSATISFIABLE,
    verify_result,
)
from repro.experiments import SOLVER_NAMES, run_one

OPTION_MIXES = [
    {"lower_bound": "lpr", "pb_learning": True, "phase_saving": True},
    {"lower_bound": "lgr", "restarts": True, "restart_interval": 3},
    {"lower_bound": "mis", "probing_implications": 20, "max_learned": 3},
    {"lower_bound": "plain", "upper_bound_cuts": False, "cardinality_cuts": False},
    {"lower_bound": "lpr", "lb_frequency": 3, "bound_conflict_learning": False},
]


def random_instance(seed):
    rng = random.Random(seed)
    return generate_random(
        num_variables=rng.randint(4, 8),
        num_constraints=rng.randint(3, 10),
        max_arity=rng.randint(2, 5),
        max_coefficient=rng.randint(1, 5),
        max_cost=rng.randint(0, 8),
        negation_probability=rng.random() * 0.6,
        seed=seed,
    )


class TestAllSolversDifferential:
    @pytest.mark.parametrize("seed", range(20))
    def test_registry_vs_oracle(self, seed):
        instance = random_instance(2000 + seed)
        oracle = BruteForceSolver(instance).solve()
        for name in SOLVER_NAMES:
            record = run_one(name, instance, "stress", time_limit=20.0)
            assert record.solved, (name, seed)
            if oracle.status == UNSATISFIABLE:
                assert record.result.status == UNSATISFIABLE, (name, seed)
            else:
                assert record.result.best_cost == oracle.best_cost, (name, seed)


class TestOptionMixesDifferential:
    @pytest.mark.parametrize("seed", range(12))
    @pytest.mark.parametrize("mix", range(len(OPTION_MIXES)))
    def test_option_mix_vs_oracle(self, seed, mix):
        instance = random_instance(3000 + seed)
        oracle = BruteForceSolver(instance).solve()
        options = SolverOptions(**OPTION_MIXES[mix])
        result = BsoloSolver(instance, options).solve()
        assert result.solved, (mix, seed)
        if oracle.status == UNSATISFIABLE:
            assert result.status == UNSATISFIABLE, (mix, seed)
        else:
            assert result.best_cost == oracle.best_cost, (mix, seed)
            assert instance.check(result.best_assignment)


class TestPlantedInstances:
    @pytest.mark.parametrize("seed", range(10))
    def test_planted_always_solved(self, seed):
        instance, witness = generate_planted(
            num_variables=8, num_constraints=10, seed=seed
        )
        result = BsoloSolver(instance, SolverOptions(lower_bound="lpr")).solve()
        assert result.is_optimal
        assert result.best_cost <= instance.cost(witness)
        outcome = verify_result(instance, result)
        # surface prover-budget exhaustion distinctly from a real pass
        assert outcome.verified, outcome


class TestSatisfactionStress:
    @pytest.mark.parametrize("seed", range(10))
    def test_satisfaction_instances(self, seed):
        instance = generate_random(
            num_variables=7, num_constraints=9, satisfaction_only=True,
            seed=4000 + seed,
        )
        oracle = BruteForceSolver(instance).solve()
        for options in (
            SolverOptions(),
            SolverOptions(pb_learning=True, restarts=True, restart_interval=2),
        ):
            result = BsoloSolver(instance, options).solve()
            assert result.status == oracle.status
            if result.best_assignment is not None:
                assert instance.check(result.best_assignment)
