"""Tests for cutting-plane resolution and PB learning."""

import itertools

import pytest

from repro.baselines import BruteForceSolver
from repro.core import BsoloSolver, SolverOptions, OPTIMAL, UNSATISFIABLE
from repro.engine.pb_resolution import (
    MAX_LITERALS,
    cardinality_reduction,
    derive_resolvent,
    resolve,
)
from repro.pb import Constraint, Objective, PBInstance


def implied_by(antecedents, candidate, n):
    """Exhaustively check: every model of all antecedents satisfies
    candidate."""
    for bits in itertools.product((0, 1), repeat=n):
        assignment = {v: bits[v - 1] for v in range(1, n + 1)}
        if all(c.is_satisfied_by(assignment) for c in antecedents):
            if not candidate.is_satisfied_by(assignment):
                return False
    return True


class TestResolve:
    def test_clausal_resolution(self):
        c1 = Constraint.clause([1, 2])
        c2 = Constraint.clause([-1, 3])
        resolvent = resolve(c1, c2, 1)
        assert resolvent == Constraint.clause([2, 3])

    def test_pb_resolution_cancels_variable(self):
        c1 = Constraint.greater_equal([(2, 1), (3, 2)], 3)
        c2 = Constraint.greater_equal([(3, -1), (1, 3)], 3)
        resolvent = resolve(c1, c2, 1)
        assert resolvent is not None
        assert 1 not in [abs(l) for l in resolvent.literals]

    def test_resolvent_implied(self):
        c1 = Constraint.greater_equal([(2, 1), (3, 2), (1, 3)], 3)
        c2 = Constraint.greater_equal([(2, -1), (2, 3)], 2)
        resolvent = resolve(c1, c2, 1)
        assert resolvent is not None
        assert implied_by([c1, c2], resolvent, 3)

    def test_same_polarity_returns_none(self):
        c1 = Constraint.clause([1, 2])
        c2 = Constraint.clause([1, 3])
        assert resolve(c1, c2, 1) is None

    def test_missing_variable_returns_none(self):
        c1 = Constraint.clause([1, 2])
        c2 = Constraint.clause([-3, 4])
        assert resolve(c1, c2, 1) is None

    def test_multiplier_scaling(self):
        # coefficients 2 and 3 on x1: multipliers 3 and 2
        c1 = Constraint.greater_equal([(2, 1), (5, 2)], 5)
        c2 = Constraint.greater_equal([(3, -1), (5, 3)], 5)
        resolvent = resolve(c1, c2, 1)
        assert resolvent is not None
        assert implied_by([c1, c2], resolvent, 3)

    @pytest.mark.parametrize("seed", range(10))
    def test_random_resolvents_implied(self, seed):
        import random

        rng = random.Random(seed)
        n = 4
        pivot = rng.randint(1, n)

        def random_constraint(pivot_literal):
            terms = [(rng.randint(1, 4), pivot_literal)]
            for var in range(1, n + 1):
                if var == abs(pivot_literal):
                    continue
                if rng.random() < 0.6:
                    terms.append(
                        (rng.randint(1, 4), var if rng.random() < 0.5 else -var)
                    )
            rhs = rng.randint(1, sum(c for c, _ in terms))
            return Constraint.greater_equal(terms, rhs)

        c1 = random_constraint(pivot)
        c2 = random_constraint(-pivot)
        if c1.is_tautology or c2.is_tautology:
            return
        if c1.coefficient(pivot) == 0 or c2.coefficient(-pivot) == 0:
            return  # saturation/cancellation removed the pivot
        resolvent = resolve(c1, c2, pivot)
        if resolvent is not None:
            assert implied_by([c1, c2], resolvent, n)


class TestCardinalityReduction:
    def test_moved_from_baselines(self):
        from repro.baselines import cardinality_reduction as alias

        assert alias is cardinality_reduction

    def test_reduction_implied(self):
        constraint = Constraint.greater_equal([(3, 1), (2, -2), (2, 3), (1, 4)], 5)
        reduced = cardinality_reduction(constraint)
        assert reduced is not None
        assert implied_by([constraint], reduced, 4)


class TestDeriveResolvent:
    def test_simple_chain(self):
        # conflict: 2a + b >= 2 with reason for a: 3~a... build manually
        conflict = Constraint.greater_equal([(2, 1), (1, 2), (1, 3)], 3)
        reason = Constraint.greater_equal([(2, -1), (1, 4)], 2)
        antecedents = {1: reason}
        resolvent = derive_resolvent(
            conflict, [1], lambda var: antecedents.get(var)
        )
        if resolvent is not None:
            assert implied_by([conflict, reason], resolvent, 4)

    def test_missing_antecedent_aborts(self):
        conflict = Constraint.greater_equal([(2, 1), (1, 2)], 2)
        assert derive_resolvent(conflict, [1], lambda var: None) is None

    def test_cancelled_variable_skipped(self):
        conflict = Constraint.greater_equal([(2, 1), (1, 2)], 2)
        # var 5 never occurs: step skipped, then the clause filter kicks in
        result = derive_resolvent(conflict, [5], lambda var: None)
        # conflict itself is not a clause and survives untouched
        assert result == conflict

    def test_clause_result_filtered(self):
        conflict = Constraint.clause([1, 2])
        assert derive_resolvent(conflict, [], lambda var: None) is None


class TestSolverWithPBLearning:
    def general_instance(self):
        return PBInstance(
            [
                Constraint.greater_equal([(3, 1), (2, 2), (2, 3)], 4),
                Constraint.greater_equal([(2, -1), (3, -2), (1, 4)], 3),
                Constraint.greater_equal([(1, 1), (1, -3), (2, -4)], 2),
            ],
            Objective({1: 2, 2: 3, 3: 1, 4: 2}),
        )

    def test_same_optimum_with_pb_learning(self):
        instance = self.general_instance()
        base = BsoloSolver(instance, SolverOptions(lower_bound="plain")).solve()
        learned = BsoloSolver(
            instance, SolverOptions(lower_bound="plain", pb_learning=True)
        ).solve()
        assert base.status == learned.status
        assert base.best_cost == learned.best_cost

    @pytest.mark.parametrize("seed", range(12))
    def test_random_against_brute_force(self, seed):
        import random

        rng = random.Random(7000 + seed)
        n = rng.randint(4, 7)
        constraints = []
        for _ in range(rng.randint(3, 8)):
            size = rng.randint(2, min(4, n))
            variables = rng.sample(range(1, n + 1), size)
            terms = [
                (rng.randint(1, 4), v if rng.random() < 0.6 else -v)
                for v in variables
            ]
            constraint = Constraint.greater_equal(
                terms, rng.randint(1, sum(c for c, _ in terms))
            )
            if not constraint.is_tautology and not constraint.is_unsatisfiable:
                constraints.append(constraint)
        if not constraints:
            pytest.skip("degenerate draw")
        instance = PBInstance(
            constraints,
            Objective({v: rng.randint(0, 5) for v in range(1, n + 1)}),
            num_variables=n,
        )
        expected = BruteForceSolver(instance).solve()
        result = BsoloSolver(
            instance, SolverOptions(lower_bound="mis", pb_learning=True)
        ).solve()
        assert result.status == expected.status
        if expected.best_cost is not None:
            assert result.best_cost == expected.best_cost
            assert instance.check(result.best_assignment)

    def test_resolvents_counted(self):
        import random

        rng = random.Random(4)
        # a PB-heavy unsatisfiable-ish instance to force PB conflicts
        constraints = []
        n = 6
        for _ in range(12):
            variables = rng.sample(range(1, n + 1), 3)
            terms = [(rng.randint(2, 4), v if rng.random() < 0.5 else -v) for v in variables]
            constraint = Constraint.greater_equal(
                terms, max(2, sum(c for c, _ in terms) - 3)
            )
            if not constraint.is_unsatisfiable and not constraint.is_tautology:
                constraints.append(constraint)
        try:
            instance = PBInstance(constraints, Objective({}), num_variables=n)
        except ValueError:
            pytest.skip("degenerate draw")
        solver = BsoloSolver(
            instance, SolverOptions(pb_learning=True, preprocess=False)
        )
        solver.solve()
        # not guaranteed to fire on every instance, but the counter must
        # be consistent with the learned count
        assert solver.stats.pb_resolvents <= solver.stats.learned_constraints
