"""Tests for the scaling and ablation experiment modules."""

import pytest

from repro.benchgen import generate_covering
from repro.experiments import (
    ABLATIONS,
    crossover_size,
    format_ablations,
    format_sweep,
    run_ablations,
    scaling_sweep,
)


class TestScaling:
    @pytest.fixture(scope="class")
    def sweep(self):
        return scaling_sweep(
            "ptl",
            sizes=[6, 10],
            solver_names=("bsolo-plain", "bsolo-lpr"),
            time_limit=5.0,
        )

    def test_points_structure(self, sweep):
        assert [point.size for point in sweep] == [6, 10]
        for point in sweep:
            assert set(point.records) == {"bsolo-plain", "bsolo-lpr"}

    def test_format(self, sweep):
        text = format_sweep(sweep)
        assert "size" in text and "bsolo-lpr" in text

    def test_crossover_none_or_in_range(self, sweep):
        size = crossover_size(sweep, "bsolo-lpr", "bsolo-plain")
        assert size in (None, 6, 10)

    def test_unknown_family(self):
        with pytest.raises(ValueError):
            scaling_sweep("espresso", sizes=[4])

    def test_empty_sweep_format(self):
        assert format_sweep([]) == ""

    @pytest.mark.parametrize("family", ["grout", "mcnc"])
    def test_other_families(self, family):
        points = scaling_sweep(
            family, sizes=[4], solver_names=("bsolo-mis",), time_limit=5.0
        )
        assert len(points) == 1


class TestAblations:
    @pytest.fixture(scope="class")
    def records(self):
        instances = [
            generate_covering(minterms=15, implicants=10, density=0.2, seed=s)
            for s in (1, 2)
        ]
        return run_ablations(
            instances,
            names=["full", "no-cuts", "with-pb-learning"],
            time_limit=5.0,
        )

    def test_all_configurations_run(self, records):
        assert [record.name for record in records] == [
            "full",
            "no-cuts",
            "with-pb-learning",
        ]
        for record in records:
            assert len(record.results) == 2

    def test_all_solve_small_instances(self, records):
        for record in records:
            assert record.solved == 2

    def test_agreement_across_configurations(self, records):
        costs = {
            tuple(result.best_cost for result in record.results)
            for record in records
        }
        assert len(costs) == 1

    def test_format(self, records):
        text = format_ablations(records)
        assert "configuration" in text and "no-cuts" in text

    def test_registry_covers_paper_features(self):
        assert "no-bound-learning" in ABLATIONS
        assert "no-lp-branching" in ABLATIONS
        assert "no-covering-reductions" in ABLATIONS
