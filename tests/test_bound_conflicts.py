"""Unit tests for bound-conflict explanation construction (Section 4)."""

from repro.core import (
    bound_conflict_clause,
    infeasibility_clause,
    lower_bound_explanation,
    path_explanation,
)
from repro.engine import Trail
from repro.pb import Constraint, Objective, PBInstance


def make_trail(n, assignments):
    """assignments: list of (literal, is_decision)."""
    trail = Trail(n)
    for literal, is_decision in assignments:
        if is_decision:
            trail.decide(literal)
        else:
            trail.imply(literal, (literal,))
    return trail


class TestPathExplanation:
    def test_costed_ones_negated(self):
        trail = make_trail(3, [(1, True), (-2, True), (3, True)])
        objective = Objective({1: 5, 2: 5, 3: 0})
        # x1 = 1 costed -> ~x1; x2 = 0 -> no; x3 = 1 but zero cost -> no
        assert path_explanation(objective, trail) == [-1]

    def test_empty_when_no_cost_incurred(self):
        trail = make_trail(2, [(-1, True), (-2, True)])
        objective = Objective({1: 5, 2: 5})
        assert path_explanation(objective, trail) == []

    def test_unassigned_costed_ignored(self):
        trail = make_trail(3, [(1, True)])
        objective = Objective({1: 2, 2: 9})
        assert path_explanation(objective, trail) == [-1]


class TestLowerBoundExplanation:
    def test_false_literals_of_responsible(self):
        trail = make_trail(3, [(-1, True), (2, True)])
        responsible = [Constraint.clause([1, 3]), Constraint.clause([-2, 3])]
        lits = lower_bound_explanation(responsible, trail)
        # literal 1 false (x1=0), literal -2 false (x2=1); 3 unassigned
        assert set(lits) == {1, -2}

    def test_deduplicated(self):
        trail = make_trail(2, [(-1, True)])
        responsible = [Constraint.clause([1, 2]), Constraint.clause([1, -2])]
        lits = lower_bound_explanation(responsible, trail)
        assert lits.count(1) == 1

    def test_alpha_refinement_drops_unhelpful(self):
        trail = make_trail(2, [(-1, True), (2, True)])
        responsible = [Constraint.clause([1, -2])]
        # x1 = 0 with alpha >= 0: flipping to 1 cannot lower the bound.
        lits = lower_bound_explanation(responsible, trail, {1: 0.5, 2: 0.5})
        assert 1 not in lits
        # x2 = 1 with alpha > 0: flipping to 0 could lower it -> kept.
        assert -2 in lits

    def test_alpha_refinement_keeps_helpful(self):
        trail = make_trail(2, [(-1, True), (2, True)])
        responsible = [Constraint.clause([1, -2])]
        lits = lower_bound_explanation(responsible, trail, {1: -0.5, 2: -0.5})
        assert 1 in lits  # x1 = 0 with alpha < 0: flip could lower bound
        assert -2 not in lits  # x2 = 1 with alpha < 0: flip only raises


class TestBoundConflictClause:
    def test_union_of_pp_and_pl(self):
        trail = make_trail(3, [(1, True), (-2, True)])
        objective = Objective({1: 4})
        responsible = [Constraint.clause([2, 3])]
        clause = bound_conflict_clause(objective, trail, responsible)
        assert set(clause) == {-1, 2}

    def test_all_literals_false(self):
        trail = make_trail(3, [(1, True), (-2, True)])
        clause = bound_conflict_clause(
            Objective({1: 4}), trail, [Constraint.clause([2, 3])]
        )
        for lit in clause:
            assert trail.literal_is_false(lit)

    def test_empty_clause_when_root_bound(self):
        trail = Trail(2)
        clause = bound_conflict_clause(Objective({1: 4}), trail, [])
        assert clause == ()


class TestInfeasibilityClause:
    def test_covers_unsatisfied_constraints(self):
        instance = PBInstance(
            [Constraint.clause([1, 2]), Constraint.clause([3, 4])],
            Objective({1: 1}),
        )
        trail = make_trail(4, [(-1, True), (3, True)])
        clause = infeasibility_clause(instance, trail)
        # clause (1|2): x1 false -> contributes literal 1; (3|4) satisfied
        assert set(clause) == {1}

    def test_extra_constraints_included(self):
        instance = PBInstance([Constraint.clause([1, 2])])
        trail = make_trail(3, [(3, True)])
        extra = [Constraint.clause([-3, 2])]
        clause = infeasibility_clause(instance, trail, extra)
        assert -3 in clause

    def test_all_false(self):
        instance = PBInstance(
            [Constraint.greater_equal([(2, 1), (1, 2), (1, 3)], 3)]
        )
        trail = make_trail(3, [(-1, True)])
        clause = infeasibility_clause(instance, trail)
        for lit in clause:
            assert trail.literal_is_false(lit)
