"""Tests for the benchmark regression tracker (tools/benchdiff.py).

Covers the comparison rules (lockstep always; relative/rate/cost checks
same-config only; overhead self-check), the findings renderer, and the
CLI exit-code contract (0 clean, 1 regression, 2 IO error).
"""

from __future__ import annotations

import copy
import importlib.util
import json
import os
import sys

import pytest

_TOOLS = os.path.join(os.path.dirname(os.path.dirname(__file__)), "tools")
_SPEC = importlib.util.spec_from_file_location(
    "benchdiff", os.path.join(_TOOLS, "benchdiff.py")
)
benchdiff = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(benchdiff)


def _report(config=None):
    """A small propbench-shaped report fixture."""
    return {
        "config": config if config is not None else {"rounds": 10, "scale": 1.0},
        "families": {
            "mcnc": {
                "drive": {
                    "lockstep_props_equal": True,
                    "speedup_watched": 1.8,
                    "props_per_sec": 100000.0,
                },
                "solve": {
                    "costs": [4, 7],
                    "statuses": ["optimal", "optimal"],
                },
                "metrics_overhead": {"overhead_pct": 1.5},
            }
        },
    }


class TestCompareReports:
    """Comparison rule semantics."""

    def test_self_diff_is_clean(self):
        report = _report()
        findings = benchdiff.compare_reports(report, copy.deepcopy(report))
        assert findings
        assert not any(f["regression"] for f in findings)

    def test_lockstep_flip_is_always_a_regression(self):
        base = _report()
        cand = _report(config={"rounds": 1})  # different config
        cand["families"]["mcnc"]["drive"]["lockstep_props_equal"] = False
        findings = benchdiff.compare_reports(base, cand)
        bad = [f for f in findings if f["regression"]]
        assert len(bad) == 1
        assert bad[0]["kind"] == "lockstep"

    def test_speedup_drop_beyond_tolerance_flagged(self):
        base, cand = _report(), _report()
        cand["families"]["mcnc"]["drive"]["speedup_watched"] = 1.0
        findings = benchdiff.compare_reports(base, cand, tolerance=25.0)
        bad = [f for f in findings if f["regression"]]
        assert [f["kind"] for f in bad] == ["relative"]

    def test_speedup_drop_within_tolerance_passes(self):
        base, cand = _report(), _report()
        cand["families"]["mcnc"]["drive"]["speedup_watched"] = 1.5
        findings = benchdiff.compare_reports(base, cand, tolerance=25.0)
        assert not any(f["regression"] for f in findings)

    def test_rate_drop_uses_rate_tolerance(self):
        base, cand = _report(), _report()
        cand["families"]["mcnc"]["drive"]["props_per_sec"] = 45000.0
        findings = benchdiff.compare_reports(base, cand, rate_tolerance=50.0)
        bad = [f for f in findings if f["regression"]]
        assert [f["kind"] for f in bad] == ["rate"]
        # generous tolerance forgives the same drop
        findings = benchdiff.compare_reports(base, cand, rate_tolerance=60.0)
        assert not any(f["regression"] for f in findings)

    def test_different_config_skips_scale_dependent_checks(self):
        base = _report()
        cand = _report(config={"rounds": 1})
        cand["families"]["mcnc"]["drive"]["speedup_watched"] = 0.1
        cand["families"]["mcnc"]["drive"]["props_per_sec"] = 1.0
        cand["families"]["mcnc"]["solve"]["costs"] = [999, 999]
        findings = benchdiff.compare_reports(base, cand)
        assert not any(f["regression"] for f in findings)
        kinds = {f["kind"] for f in findings}
        assert kinds == {"lockstep", "overhead"}

    def test_worse_cost_is_a_regression(self):
        base, cand = _report(), _report()
        cand["families"]["mcnc"]["solve"]["costs"] = [4, 8]
        findings = benchdiff.compare_reports(base, cand)
        bad = [f for f in findings if f["regression"]]
        assert [f["kind"] for f in bad] == ["costs"]

    def test_fewer_solved_statuses_is_a_regression(self):
        base, cand = _report(), _report()
        cand["families"]["mcnc"]["solve"]["statuses"] = ["optimal", "unknown"]
        findings = benchdiff.compare_reports(base, cand)
        bad = [f for f in findings if f["regression"]]
        assert [f["kind"] for f in bad] == ["statuses"]

    def test_overhead_self_check_ignores_baseline(self):
        base = _report()
        cand = _report(config={"rounds": 1})  # config mismatch is fine
        cand["families"]["mcnc"]["metrics_overhead"]["overhead_pct"] = 25.0
        findings = benchdiff.compare_reports(base, cand, overhead_limit=10.0)
        bad = [f for f in findings if f["regression"]]
        assert [f["kind"] for f in bad] == ["overhead"]
        findings = benchdiff.compare_reports(base, cand, overhead_limit=30.0)
        assert not any(f["regression"] for f in findings)

    def test_metric_missing_from_candidate_is_skipped(self):
        base, cand = _report(), _report()
        del cand["families"]["mcnc"]["drive"]["speedup_watched"]
        findings = benchdiff.compare_reports(base, cand)
        assert not any(f["regression"] for f in findings)
        assert not any(
            f["metric"].endswith("speedup_watched") for f in findings
        )


class TestFormatFindings:
    """Human-readable rendering."""

    def test_flags_and_summary_line(self):
        base, cand = _report(), _report()
        cand["families"]["mcnc"]["drive"]["lockstep_props_equal"] = False
        text = benchdiff.format_findings(
            benchdiff.compare_reports(base, cand)
        )
        assert "REGRESSION" in text
        lines = text.splitlines()
        assert lines[-1].endswith("1 regression(s)")

    def test_empty_findings(self):
        assert "no comparable metrics" in benchdiff.format_findings([])


class TestMain:
    """CLI exit-code contract."""

    def _write(self, tmp_path, name, report):
        path = tmp_path / name
        path.write_text(json.dumps(report))
        return str(path)

    def test_clean_diff_exits_zero(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", _report())
        cand = self._write(tmp_path, "cand.json", _report())
        assert benchdiff.main([base, cand]) == 0
        out = capsys.readouterr().out
        assert "0 regression(s)" in out

    def test_regression_exits_one_and_writes_report(self, tmp_path):
        doctored = _report()
        doctored["families"]["mcnc"]["drive"]["lockstep_props_equal"] = False
        base = self._write(tmp_path, "base.json", _report())
        cand = self._write(tmp_path, "cand.json", doctored)
        out = str(tmp_path / "findings.json")
        assert benchdiff.main([base, cand, "--report", out]) == 1
        payload = json.loads(open(out).read())
        assert payload["regressions"] == 1
        assert any(f["regression"] for f in payload["findings"])

    def test_missing_file_exits_two(self, tmp_path):
        base = self._write(tmp_path, "base.json", _report())
        with pytest.raises(SystemExit) as exc:
            benchdiff.main([base, str(tmp_path / "absent.json")])
        assert exc.value.code == 2

    def test_missing_candidate_is_usage_error(self, tmp_path):
        base = self._write(tmp_path, "base.json", _report())
        with pytest.raises(SystemExit) as exc:
            benchdiff.main([base])
        assert exc.value.code == 2

    def test_tolerance_flags_change_verdict(self, tmp_path):
        cand_report = _report()
        cand_report["families"]["mcnc"]["drive"]["speedup_watched"] = 1.0
        base = self._write(tmp_path, "base.json", _report())
        cand = self._write(tmp_path, "cand.json", cand_report)
        assert benchdiff.main([base, cand]) == 1
        assert benchdiff.main([base, cand, "--tolerance", "60"]) == 0
