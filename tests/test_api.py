"""Tests for the solver registry and the ``repro.api`` façade."""

import pickle

import pytest

import repro
from repro.api import (
    UnknownSolverError,
    available_solvers,
    canonical_name,
    make_solver,
    register_solver,
    solve,
    solver_descriptions,
)
from repro.baselines.brute_force import BruteForceSolver
from repro.baselines.covering_bnb import CoveringBnBSolver
from repro.baselines.cutting_planes import CuttingPlanesSolver
from repro.baselines.linear_search import LinearSearchSolver
from repro.baselines.milp import MILPSolver
from repro.core import BsoloSolver, OPTIMAL, SolverOptions, UNKNOWN
from repro.pb import Constraint, Objective, PBInstance

CANONICAL = [
    "brute-force",
    "bsolo",
    "bsolo-hybrid",
    "bsolo-lgr",
    "bsolo-lpr",
    "bsolo-mis",
    "bsolo-plain",
    "covering-bnb",
    "cutting-planes",
    "linear-search",
    "milp",
    "portfolio",
]

ALIASES = {
    "pbs": "linear-search",
    "galena": "cutting-planes",
    "cplex": "milp",
    "scherzo": "covering-bnb",
}

#: Every registered solver that runs a plain sequential search.
SEQUENTIAL = [name for name in CANONICAL if name != "portfolio"]


def covering_instance():
    """min 3a + 2b + 2c, clauses (a|b), (b|c), (a|c); optimum 4."""
    return PBInstance(
        [
            Constraint.clause([1, 2]),
            Constraint.clause([2, 3]),
            Constraint.clause([1, 3]),
        ],
        Objective({1: 3, 2: 2, 3: 2}),
    )


class TestRegistry:
    def test_canonical_names(self):
        assert available_solvers() == CANONICAL

    def test_aliases_listed_only_on_request(self):
        with_aliases = available_solvers(include_aliases=True)
        assert set(with_aliases) == set(CANONICAL) | set(ALIASES)
        for alias, canonical in ALIASES.items():
            assert canonical_name(alias) == canonical
        for name in CANONICAL:
            assert canonical_name(name) == name

    def test_descriptions_cover_canonical_names(self):
        descriptions = solver_descriptions()
        assert sorted(descriptions) == CANONICAL
        assert all(descriptions.values())

    def test_unknown_name_raises(self):
        with pytest.raises(UnknownSolverError):
            make_solver(covering_instance(), "minisat")
        with pytest.raises(UnknownSolverError):
            canonical_name("minisat")
        # UnknownSolverError is a ValueError for older call sites
        with pytest.raises(ValueError):
            solve(covering_instance(), solver="nope")

    def test_make_solver_returns_named_solver(self):
        solver = make_solver(covering_instance(), "bsolo-mis")
        assert isinstance(solver, BsoloSolver)
        result = solver.solve()
        assert result.status == OPTIMAL and result.best_cost == 4

    def test_register_solver_and_alias(self):
        calls = []

        def factory(instance, options):
            calls.append((instance, options))
            return BsoloSolver(instance, options)

        register_solver("test-solver", factory, "for this test",
                        aliases=("test-alias",))
        try:
            assert "test-solver" in available_solvers()
            assert "test-alias" not in available_solvers()
            assert canonical_name("test-alias") == "test-solver"
            result = solve(covering_instance(), solver="test-alias")
            assert result.best_cost == 4
            assert len(calls) == 1
        finally:
            from repro.api import _REGISTRY

            _REGISTRY.pop("test-solver", None)
            _REGISTRY.pop("test-alias", None)


class TestFacade:
    @pytest.mark.parametrize("name", SEQUENTIAL)
    def test_every_solver_finds_the_optimum(self, name):
        instance = covering_instance()
        result = solve(instance, solver=name, timeout=30.0)
        assert result.status == OPTIMAL
        assert result.best_cost == 4
        assert instance.check(result.model)

    @pytest.mark.parametrize("alias", sorted(ALIASES))
    def test_aliases_solve_too(self, alias):
        result = solve(covering_instance(), solver=alias, timeout=30.0)
        assert result.status == OPTIMAL and result.best_cost == 4

    def test_backward_compatible_positional_options(self):
        # the pre-registry signature was solve(instance, options)
        result = solve(covering_instance(), SolverOptions(lower_bound="mis"))
        assert result.status == OPTIMAL and result.best_cost == 4

    def test_options_passed_twice_rejected(self):
        with pytest.raises(TypeError):
            solve(
                covering_instance(),
                SolverOptions(),
                options=SolverOptions(),
            )

    def test_timeout_overrides_options(self):
        # a zero-ish budget must stop the solver almost immediately
        result = solve(
            covering_instance(),
            solver="bsolo-plain",
            options=SolverOptions(time_limit=3600.0),
            timeout=1e-9,
        )
        assert result.status == UNKNOWN

    def test_facade_reexported_from_package_root(self):
        assert repro.solve is solve
        assert repro.make_solver is make_solver
        assert repro.available_solvers is available_solvers


class TestAssumptions:
    """First-class ``assumptions=`` on the façade and the registry."""

    def test_solve_under_assumptions(self):
        result = solve(covering_instance(), assumptions=[1])
        assert result.status == OPTIMAL
        assert result.model[1] == 1
        assert result.best_cost == 5

    def test_make_solver_presets_assumptions(self):
        solver = make_solver(covering_instance(), "bsolo", assumptions=[-2])
        result = solver.solve()
        assert result.status == OPTIMAL
        assert result.model[2] == 0
        assert result.best_cost == 5  # ~b forces a and c

    @pytest.mark.parametrize(
        "name", ["brute-force", "milp", "linear-search", "covering-bnb"]
    )
    def test_unsupporting_solvers_raise_uniformly(self, name):
        from repro.core.options import UnsupportedOptionError

        with pytest.raises(UnsupportedOptionError):
            solve(covering_instance(), solver=name, assumptions=[1])
        with pytest.raises(UnsupportedOptionError):
            make_solver(covering_instance(), name, assumptions=[1])

    def test_no_assumptions_means_no_screening(self):
        # assumptions=None must not probe for support at all
        result = solve(covering_instance(), solver="brute-force")
        assert result.status == OPTIMAL

    def test_error_reexported_from_package_root(self):
        from repro.core.options import UnsupportedOptionError

        assert repro.UnsupportedOptionError is UnsupportedOptionError


class TestKeywordOnlyMigration:
    """The instrument arguments went keyword-only; old positional
    callers get one release behind a DeprecationWarning."""

    def test_positional_instruments_warn_but_work(self):
        with pytest.warns(DeprecationWarning):
            result = solve(covering_instance(), "bsolo", None, 30.0)
        assert result.status == OPTIMAL and result.best_cost == 4

    def test_positional_maps_old_order(self):
        # (timeout, propagation): a tiny timeout must still bite
        with pytest.warns(DeprecationWarning):
            result = solve(
                covering_instance(), "bsolo-plain", None, 1e-9, "counter"
            )
        assert result.status == UNKNOWN

    def test_keyword_callers_do_not_warn(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            result = solve(covering_instance(), timeout=30.0)
        assert result.status == OPTIMAL

    def test_double_pass_rejected(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError):
                solve(covering_instance(), "bsolo", None, 5.0, timeout=5.0)

    def test_too_many_positionals_rejected(self):
        with pytest.raises(TypeError):
            solve(
                covering_instance(),
                "bsolo", None, None, None, None, None, None, None, None,
            )

    def test_session_entry_points_reexported(self):
        from repro.incremental import SolverSession, make_session

        assert repro.SolverSession is SolverSession
        assert repro.make_session is make_session


class TestUniformConstructors:
    """Every solver class accepts ``(instance, options)`` and exposes
    ``.solve() -> SolveResult`` plus ``.name`` and ``.stats``."""

    CLASSES = [
        BsoloSolver,
        LinearSearchSolver,
        CuttingPlanesSolver,
        MILPSolver,
        CoveringBnBSolver,
        BruteForceSolver,
    ]

    @pytest.mark.parametrize("cls", CLASSES, ids=lambda cls: cls.__name__)
    def test_instance_options_shape(self, cls):
        solver = cls(covering_instance(), SolverOptions(time_limit=30.0))
        assert isinstance(solver.name, str) and solver.name
        assert solver.stats is not None
        result = solver.solve()
        assert result.status == OPTIMAL
        assert result.best_cost == 4
        assert result.stats is solver.stats

    @pytest.mark.parametrize("cls", CLASSES, ids=lambda cls: cls.__name__)
    def test_options_default_to_none(self, cls):
        result = cls(covering_instance()).solve()
        assert result.status == OPTIMAL and result.best_cost == 4


class TestSolveResultNormalization:
    def test_model_property_mirrors_best_assignment(self):
        result = solve(covering_instance(), solver="milp")
        assert result.model == result.best_assignment
        assert covering_instance().check(result.model)

    @pytest.mark.parametrize("name", SEQUENTIAL)
    def test_stats_dict_has_shared_shape(self, name):
        result = solve(covering_instance(), solver=name, timeout=30.0)
        stats = result.stats.as_dict()
        for key in ("decisions", "elapsed", "external_bounds", "interrupted"):
            assert key in stats

    def test_result_pickles(self):
        result = solve(covering_instance(), solver="bsolo-lpr")
        clone = pickle.loads(pickle.dumps(result))
        assert clone.status == result.status
        assert clone.best_cost == result.best_cost
        assert clone.model == result.model


class TestOptionsReplace:
    def test_replace_overrides_and_preserves(self):
        base = SolverOptions(lower_bound="mis", restarts=True)
        derived = base.replace(lower_bound="lpr")
        assert derived.lower_bound == "lpr"
        assert derived.restarts is True
        assert base.lower_bound == "mis"  # original untouched

    def test_replace_unknown_key_rejected(self):
        with pytest.raises(TypeError):
            SolverOptions().replace(not_an_option=1)

    def test_replace_carries_callables(self):
        marker = lambda: None  # noqa: E731
        derived = SolverOptions(should_stop=marker).replace(restarts=True)
        assert derived.should_stop is marker

    def test_poll_interval_validated(self):
        with pytest.raises(ValueError):
            SolverOptions(poll_interval=0)

    def test_options_pickle(self):
        options = SolverOptions(lower_bound="lgr", time_limit=2.5)
        clone = pickle.loads(pickle.dumps(options))
        assert clone.lower_bound == "lgr"
        assert clone.time_limit == 2.5
