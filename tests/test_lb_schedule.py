"""Unit tests for the bound-call scheduling policies."""

import pytest

from repro.core.lb_schedule import AdaptiveSchedule, StaticSchedule, make_schedule
from repro.core.options import SolverOptions
from repro.core.solver import BsoloSolver
from repro.pb import Constraint, Objective, PBInstance


def covering_instance():
    return PBInstance(
        [
            Constraint.clause([1, 2]),
            Constraint.clause([2, 3]),
            Constraint.clause([1, 3]),
        ],
        Objective({1: 3, 2: 2, 3: 2}),
    )


class TestStaticSchedule:
    @pytest.mark.parametrize("frequency", [1, 2, 3, 7])
    def test_matches_modulo_semantics(self, frequency):
        schedule = StaticSchedule(frequency)
        decisions = [schedule.should_bound() for _ in range(25)]
        expected = [index % frequency == 0 for index in range(25)]
        assert decisions == expected

    def test_record_is_inert(self):
        schedule = StaticSchedule(3)
        pattern_before = [schedule.should_bound() for _ in range(6)]
        schedule.record(pruned=False, seconds=5.0, method="lpr")
        schedule.record(pruned=True, seconds=0.0, method="mis")
        pattern_after = [schedule.should_bound() for _ in range(6)]
        assert pattern_before == pattern_after

    def test_prefilter_always_on(self):
        schedule = StaticSchedule(1)
        for _ in range(10):
            schedule.record(pruned=False, seconds=1.0, method="lpr")
        assert schedule.use_prefilter()

    def test_stats(self):
        schedule = StaticSchedule(2)
        for _ in range(10):
            schedule.should_bound()
        stats = schedule.stats_dict()
        assert stats["policy"] == "static"
        assert stats["nodes_seen"] == 10
        assert stats["bound_calls"] == 5


class TestAdaptiveSchedule:
    def test_bounds_first_node(self):
        assert AdaptiveSchedule(1).should_bound()

    def test_seeded_by_frequency(self):
        schedule = AdaptiveSchedule(4)
        decisions = [schedule.should_bound() for _ in range(8)]
        assert decisions == [False, False, False, True] * 2

    def test_interval_shrinks_on_prunes(self):
        schedule = AdaptiveSchedule(8)
        for _ in range(5):
            schedule.record(pruned=True, seconds=0.001, method="lpr")
        assert schedule.stats_dict()["interval"] == 1

    def test_interval_grows_on_expensive_drought(self):
        schedule = AdaptiveSchedule(1)
        for _ in range(60):
            schedule.record(pruned=False, seconds=0.5, method="lpr")
        stats = schedule.stats_dict()
        assert stats["interval"] > 1
        assert stats["interval"] <= 64

    def test_interval_never_exceeds_cap(self):
        schedule = AdaptiveSchedule(1, max_interval=16)
        for _ in range(500):
            schedule.record(pruned=False, seconds=1.0, method="lpr")
        assert schedule.stats_dict()["interval"] <= 16

    def test_skips_nodes_when_interval_grows(self):
        schedule = AdaptiveSchedule(1)
        for _ in range(60):
            schedule.record(pruned=False, seconds=0.5, method="lpr")
        decisions = [schedule.should_bound() for _ in range(20)]
        assert not all(decisions)
        assert schedule.stats_dict()["skipped_nodes"] > 0

    def test_prune_recovers_interval(self):
        schedule = AdaptiveSchedule(1)
        for _ in range(60):
            schedule.record(pruned=False, seconds=0.5, method="lpr")
        grown = schedule.stats_dict()["interval"]
        for _ in range(10):
            schedule.record(pruned=True, seconds=0.001, method="lpr")
        assert schedule.stats_dict()["interval"] < grown

    def test_prefilter_benched_when_useless(self):
        schedule = AdaptiveSchedule(1)
        # The LP keeps pruning where MIS does not: MIS payoff decays.
        for _ in range(60):
            schedule.record(pruned=True, seconds=0.01, method="lpr")
        assert not schedule.use_prefilter()

    def test_prefilter_reprobed_periodically(self):
        schedule = AdaptiveSchedule(1)
        for _ in range(60):
            schedule.record(pruned=True, seconds=0.01, method="lpr")
        probes = sum(1 for _ in range(200) if schedule.use_prefilter())
        assert probes >= 1  # the periodic probation re-enables it

    def test_prefilter_stays_on_while_pruning(self):
        schedule = AdaptiveSchedule(1)
        for _ in range(60):
            schedule.record(pruned=True, seconds=0.0001, method="mis")
        assert schedule.use_prefilter()

    def test_stats_keys(self):
        schedule = AdaptiveSchedule(2)
        schedule.should_bound()
        schedule.record(pruned=True, seconds=0.001, method="lpr")
        stats = schedule.stats_dict()
        for key in (
            "policy",
            "nodes_seen",
            "bound_calls",
            "skipped_nodes",
            "interval",
            "prune_rate",
            "prefilter_rate",
        ):
            assert key in stats
        assert stats["policy"] == "adaptive"


class TestMakeSchedule:
    def test_dispatch(self):
        assert isinstance(
            make_schedule(SolverOptions(lb_schedule="static")), StaticSchedule
        )
        assert isinstance(
            make_schedule(SolverOptions(lb_schedule="adaptive")), AdaptiveSchedule
        )

    def test_unknown_schedule_rejected(self):
        with pytest.raises(ValueError):
            SolverOptions(lb_schedule="aggressive")

    def test_describe_includes_schedule(self):
        options = SolverOptions(lb_schedule="adaptive", incremental_bounds=False)
        described = options.describe()
        assert described["lb_schedule"] == "adaptive"
        assert described["incremental_bounds"] is False

    def test_replace_roundtrip(self):
        options = SolverOptions().replace(lb_schedule="adaptive")
        assert options.lb_schedule == "adaptive"


class TestSolverIntegration:
    @pytest.mark.parametrize("method", ["mis", "lpr", "hybrid"])
    @pytest.mark.parametrize("schedule", ["static", "adaptive"])
    def test_same_optimum(self, method, schedule):
        instance = covering_instance()
        options = SolverOptions(lower_bound=method, lb_schedule=schedule)
        result = BsoloSolver(instance, options).solve()
        assert result.status == "optimal"
        assert result.best_cost == 4

    def test_scheduler_stats_reported(self):
        options = SolverOptions(lower_bound="lpr", lb_schedule="adaptive")
        solver = BsoloSolver(covering_instance(), options)
        solver.solve()
        scheduler = solver.stats.lb_stats["scheduler"]
        assert scheduler["policy"] == "adaptive"
        assert scheduler["bound_calls"] >= 1

    def test_static_scheduler_counts_nodes(self):
        options = SolverOptions(lower_bound="lpr", lb_frequency=2)
        solver = BsoloSolver(covering_instance(), options)
        solver.solve()
        scheduler = solver.stats.lb_stats["scheduler"]
        assert scheduler["policy"] == "static"
        assert scheduler["nodes_seen"] >= scheduler["bound_calls"]
