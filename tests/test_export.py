"""Tests for the OPB suite exporter."""

import os

import pytest

from repro.benchgen import (
    export_suite,
    export_table1_suite,
    generate_covering,
    generate_scheduling,
)
from repro.pb import parse_file


class TestExportSuite:
    def test_files_and_manifest(self, tmp_path):
        directory = str(tmp_path)
        instances = [generate_covering(minterms=6, implicants=4, seed=s) for s in (1, 2)]
        written = export_suite(
            directory, {"mcnc": (instances, ["mcnc-1", "mcnc-2"])}
        )
        assert sorted(written) == [
            os.path.join("mcnc", "mcnc-1.opb"),
            os.path.join("mcnc", "mcnc-2.opb"),
        ]
        manifest = open(os.path.join(directory, "MANIFEST.txt")).read()
        assert "mcnc-1.opb" in manifest and "vars=" in manifest

    def test_round_trip_through_files(self, tmp_path):
        directory = str(tmp_path)
        original = generate_covering(minterms=6, implicants=4, seed=3)
        export_suite(directory, {"f": ([original], ["one"])})
        reparsed = parse_file(os.path.join(directory, "f", "one.opb"))
        assert set(reparsed.constraints) == set(original.constraints)
        assert reparsed.objective.costs == original.objective.costs

    def test_satisfaction_instances_export(self, tmp_path):
        directory = str(tmp_path)
        instance = generate_scheduling(teams=4, seed=0)
        export_suite(directory, {"acc": ([instance], ["acc-1"])})
        reparsed = parse_file(os.path.join(directory, "acc", "acc-1.opb"))
        assert reparsed.is_satisfaction

    def test_table1_export(self, tmp_path):
        directory = str(tmp_path)
        written = export_table1_suite(directory, count=1, scale=0.3)
        assert len(written) == 4  # one per family
        for relative in written:
            path = os.path.join(directory, relative)
            assert os.path.exists(path)
            parse_file(path)  # must be valid OPB

    def test_cli_runs_on_exported_file(self, tmp_path, capsys):
        from repro import cli

        directory = str(tmp_path)
        instance = generate_covering(minterms=6, implicants=4, seed=4)
        export_suite(directory, {"f": ([instance], ["one"])})
        exit_code = cli.main(
            [os.path.join(directory, "f", "one.opb"), "--solver", "bsolo-mis"]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "s OPTIMAL" in out
