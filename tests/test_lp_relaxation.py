"""Unit tests for LP data building and the LPR lower bound."""

import pytest

from repro.lp import (
    LPRelaxationBound,
    build_lp_data,
    integer_ceil_bound,
    root_lpr_bound,
)
from repro.pb import Constraint, Objective, PBInstance


def covering_instance():
    """min 3a + 2b + 2c with clauses (a|b), (b|c), (a|c)."""
    return PBInstance(
        [
            Constraint.clause([1, 2]),
            Constraint.clause([2, 3]),
            Constraint.clause([1, 3]),
        ],
        Objective({1: 3, 2: 2, 3: 2}),
    )


class TestBuildLPData:
    def test_basic_shape(self):
        data = build_lp_data(covering_instance())
        assert data.num_rows == 3
        assert data.num_columns == 3
        assert sorted(data.columns) == [1, 2, 3]

    def test_negative_literal_substitution(self):
        instance = PBInstance(
            [Constraint.greater_equal([(2, -1), (1, 2)], 2)], Objective({1: 1, 2: 1})
        )
        data = build_lp_data(instance)
        col1 = data.column_of[1]
        col2 = data.column_of[2]
        # 2*~x1 + x2 >= 2  ->  -2*x1 + x2 >= 0
        assert data.A[0, col1] == -2.0
        assert data.A[0, col2] == 1.0
        assert data.b[0] == 0.0

    def test_fixed_variables_substituted(self):
        data = build_lp_data(covering_instance(), fixed={1: 1})
        # clauses containing a are satisfied; only (b|c) remains
        assert data.num_rows == 1
        assert 1 not in data.column_of

    def test_violated_fixing_returns_none(self):
        instance = PBInstance([Constraint.clause([1, 2])])
        assert build_lp_data(instance, fixed={1: 0, 2: 0}) is None

    def test_unreachable_rhs_returns_none(self):
        instance = PBInstance([Constraint.at_least([1, 2, 3], 2)])
        assert build_lp_data(instance, fixed={1: 0, 2: 0}) is None

    def test_extra_constraints_included(self):
        extra = Constraint.clause([2])
        data = build_lp_data(covering_instance(), extra_constraints=[extra])
        assert data.num_rows == 4

    def test_all_satisfied_empty_lp(self):
        data = build_lp_data(covering_instance(), fixed={1: 1, 2: 1, 3: 1})
        assert data.num_rows == 0


class TestIntegerCeilBound:
    def test_rounds_up(self):
        assert integer_ceil_bound(2.3) == 3

    def test_integral_value_stable(self):
        assert integer_ceil_bound(5.0) == 5
        assert integer_ceil_bound(5.0000000001) == 5
        assert integer_ceil_bound(4.9999999999) == 5

    def test_deprecated_alias_removed(self):
        # integer_floor_bound always rounded *up*; the misnamed alias
        # finished its deprecation window and is gone.
        import repro.lp

        assert not hasattr(repro.lp, "integer_floor_bound")


class TestLPRelaxationBound:
    def test_root_bound_le_optimum(self):
        instance = covering_instance()
        # true optimum: pick b and either a or c... b covers rows 1,2; row 3
        # needs a or c: cost 2+2=4
        bound = LPRelaxationBound(instance).compute({})
        assert not bound.infeasible
        assert bound.value <= 4
        assert bound.value >= 3  # LP: x=0.5 everywhere -> 3.5 -> ceil 4? compute

    def test_fractional_values_exposed(self):
        bound = LPRelaxationBound(covering_instance()).compute({})
        assert set(bound.fractional) == {1, 2, 3}
        for value in bound.fractional.values():
            assert -1e-9 <= value <= 1 + 1e-9

    def test_explanation_subset_of_rows(self):
        instance = covering_instance()
        bound = LPRelaxationBound(instance).compute({})
        for constraint in bound.explanation:
            assert constraint in instance.constraints

    def test_fixed_reduces_bound_scope(self):
        instance = covering_instance()
        bound = LPRelaxationBound(instance).compute({2: 1})
        # remaining: (a|c) -> LP min(3,2) picks c: bound 2
        assert bound.value == 2

    def test_infeasible_fixing(self):
        instance = PBInstance([Constraint.clause([1, 2])], Objective({1: 1}))
        bound = LPRelaxationBound(instance).compute({1: 0, 2: 0})
        assert bound.infeasible

    def test_nothing_left(self):
        bound = LPRelaxationBound(covering_instance()).compute({1: 1, 2: 1, 3: 1})
        assert bound.value == 0 and not bound.infeasible

    def test_call_statistics(self):
        lpr = LPRelaxationBound(covering_instance())
        lpr.compute({})
        lpr.compute({1: 1})
        assert lpr.num_calls == 2
        assert lpr.total_iterations > 0

    def test_root_helper(self):
        assert root_lpr_bound(covering_instance()) >= 3

    def test_root_helper_reuses_bounder(self):
        instance = covering_instance()
        bounder = LPRelaxationBound(instance)
        assert root_lpr_bound(instance, bounder=bounder) == root_lpr_bound(instance)
        assert bounder.num_calls == 1


class TestBoundSoundness:
    """The LPR bound never exceeds the true optimum (brute force)."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_instances(self, seed):
        import itertools
        import random

        rng = random.Random(seed)
        n = rng.randint(2, 5)
        constraints = []
        for _ in range(rng.randint(1, 5)):
            size = rng.randint(1, n)
            variables = rng.sample(range(1, n + 1), size)
            terms = [
                (rng.randint(1, 4), v if rng.random() < 0.7 else -v)
                for v in variables
            ]
            rhs = rng.randint(1, max(1, sum(c for c, _ in terms) - 1))
            constraint = Constraint.greater_equal(terms, rhs)
            if not constraint.is_tautology and not constraint.is_unsatisfiable:
                constraints.append(constraint)
        if not constraints:
            pytest.skip("degenerate draw")
        objective = Objective({v: rng.randint(0, 5) for v in range(1, n + 1)})
        instance = PBInstance(constraints, objective, num_variables=n)

        best = None
        for bits in itertools.product([0, 1], repeat=n):
            assignment = {v: bits[v - 1] for v in range(1, n + 1)}
            if instance.check(assignment):
                cost = instance.cost(assignment)
                best = cost if best is None else min(best, cost)

        bound = LPRelaxationBound(instance).compute({})
        if best is None:
            # integrally infeasible; LP may be feasible, bound must still
            # be a *lower* bound (vacuous) or detected infeasible.
            return
        assert not bound.infeasible
        assert bound.value <= best
