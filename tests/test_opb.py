"""Unit tests for the OPB reader/writer."""

import io

import pytest

from repro.pb import OPBError, PBModel, opb, parse, write


SAMPLE = """\
* #variable= 5 #constraint= 4
* a comment
min: +1 x1 +4 x2 +2 x5 ;
+1 x1 +4 x2 -2 x5 >= 2 ;
+1 x1 +1 ~x3 >= 1 ;
+2 x3 +1 x4 <= 2 ;
+1 x4 +1 x5 = 1 ;
"""


class TestParse:
    def test_sample(self):
        instance = parse(SAMPLE)
        assert instance.num_variables == 5
        # <= becomes one constraint, = becomes two
        assert instance.num_constraints == 5
        assert instance.objective.costs == {1: 1, 2: 4, 5: 2}

    def test_parse_from_file_object(self):
        instance = parse(io.StringIO(SAMPLE))
        assert instance.num_variables == 5

    def test_no_objective(self):
        instance = parse("+1 x1 +1 x2 >= 1 ;\n")
        assert instance.is_satisfaction

    def test_negative_coefficients_normalized(self):
        instance = parse("-2 x1 -3 x2 >= -4 ;\n")
        (constraint,) = instance.constraints
        assert all(coef > 0 for coef, _ in constraint.terms)
        assert constraint.rhs >= 0

    def test_negated_literals(self):
        instance = parse("+1 ~x1 +1 ~x2 >= 2 ;\n")
        (constraint,) = instance.constraints
        assert set(constraint.literals) == {-1, -2}

    def test_objective_after_constraint_rejected(self):
        with pytest.raises(OPBError):
            parse("+1 x1 >= 1 ;\nmin: +1 x1 ;\n")

    def test_double_objective_rejected(self):
        with pytest.raises(OPBError):
            parse("min: +1 x1 ;\nmin: +1 x2 ;\n+1 x1 >= 1 ;\n")

    def test_missing_semicolon_rejected(self):
        with pytest.raises(OPBError):
            parse("+1 x1 >= 1\n")

    def test_missing_relation_rejected(self):
        with pytest.raises(OPBError):
            parse("+1 x1 1 ;\n")

    def test_garbage_rejected(self):
        with pytest.raises(OPBError):
            parse("+1 y1 >= 1 ;\n")

    def test_coefficient_without_literal_rejected(self):
        with pytest.raises(OPBError):
            parse("+1 >= 1 ;\n")

    def test_zero_variable_rejected(self):
        with pytest.raises(OPBError):
            parse("+1 x0 >= 1 ;\n")

    def test_maximization_supported(self):
        instance = parse("max: +1 x1 ;\n+1 x1 +1 x2 >= 1 ;\n")
        # maximize x1 == minimize -x1; solution x1=1 must be cheapest
        best = min(
            (a for a in _all_assignments(instance.num_variables) if instance.check(a)),
            key=instance.cost,
        )
        assert best[1] == 1


def _all_assignments(n):
    for bits in range(2 ** n):
        yield {v: (bits >> (v - 1)) & 1 for v in range(1, n + 1)}


class TestRoundTrip:
    def test_write_then_parse(self):
        original = parse(SAMPLE)
        text = write(original)
        reparsed = parse(text)
        assert reparsed.num_variables == original.num_variables
        assert set(reparsed.constraints) == set(original.constraints)
        assert reparsed.objective.costs == original.objective.costs

    def test_write_to_sink(self):
        sink = io.StringIO()
        write(parse(SAMPLE), sink)
        assert "min:" in sink.getvalue()

    def test_write_satisfaction_has_no_objective(self):
        text = write(parse("+1 x1 >= 1 ;\n"))
        assert "min:" not in text

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "instance.opb")
        original = parse(SAMPLE)
        opb.write_file(original, path)
        reparsed = opb.parse_file(path)
        assert set(reparsed.constraints) == set(original.constraints)

    def test_offset_round_trip(self):
        model = PBModel()
        x = model.new_variable("x")
        model.add_clause([x])
        model.minimize([(2, x), (3, -x)])  # 3*~x folds into offset 3
        original = model.build()
        # 2x + 3~x normalizes to offset 2 + 1*~x (complement variable)
        assert original.objective.offset == 2
        reparsed = parse(write(original))
        assert reparsed.objective.offset == original.objective.offset
        assert reparsed.objective.costs == original.objective.costs

    def test_negative_offset_round_trip(self):
        model = PBModel()
        x = model.new_variable("x")
        model.add_clause([x, -x])
        model.maximize([(2, x)])
        original = model.build()
        assert original.objective.offset < 0
        reparsed = parse(write(original))
        assert reparsed.objective.offset == original.objective.offset
