"""Unit tests for the literal helpers."""

import pytest

from repro.pb import literals


class TestVariable:
    def test_positive_literal(self):
        assert literals.variable(7) == 7

    def test_negative_literal(self):
        assert literals.variable(-7) == 7

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            literals.variable(0)


class TestNegate:
    def test_involution(self):
        assert literals.negate(literals.negate(5)) == 5
        assert literals.negate(literals.negate(-5)) == -5

    def test_flips_sign(self):
        assert literals.negate(3) == -3
        assert literals.negate(-3) == 3

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            literals.negate(0)


class TestIsPositive:
    def test_polarity(self):
        assert literals.is_positive(1)
        assert not literals.is_positive(-1)

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            literals.is_positive(0)


class TestLiteralValue:
    def test_positive_literal_true(self):
        assert literals.literal_value(2, {2: 1}) == literals.TRUE

    def test_positive_literal_false(self):
        assert literals.literal_value(2, {2: 0}) == literals.FALSE

    def test_negative_literal_true_when_var_zero(self):
        assert literals.literal_value(-2, {2: 0}) == literals.TRUE

    def test_negative_literal_false_when_var_one(self):
        assert literals.literal_value(-2, {2: 1}) == literals.FALSE

    def test_unassigned_is_none(self):
        assert literals.literal_value(2, {}) is None
        assert literals.literal_value(-2, {3: 1}) is None


class TestMakeLiteral:
    def test_polarities(self):
        assert literals.make_literal(4, True) == 4
        assert literals.make_literal(4, False) == -4

    def test_invalid_variable(self):
        with pytest.raises(ValueError):
            literals.make_literal(0, True)
        with pytest.raises(ValueError):
            literals.make_literal(-1, False)


class TestLiteralToStr:
    def test_default_names(self):
        assert literals.literal_to_str(3) == "x3"
        assert literals.literal_to_str(-3) == "~x3"

    def test_symbolic_names(self):
        names = {3: "sel"}
        assert literals.literal_to_str(3, names) == "sel"
        assert literals.literal_to_str(-3, names) == "~sel"

    def test_missing_name_falls_back(self):
        assert literals.literal_to_str(4, {3: "sel"}) == "x4"


class TestMaxVariable:
    def test_empty(self):
        assert literals.max_variable([]) == 0

    def test_mixed_polarities(self):
        assert literals.max_variable([3, -9, 5]) == 9
