"""Tests for proof logging and independent checking (repro.certify)."""

import subprocess
import sys
from io import StringIO

import pytest

from repro.certify import (
    CheckOutcome,
    ProofChecker,
    ProofError,
    ProofLogger,
    ProofSyntaxError,
)
from repro.certify import format as fmt
from repro.certify import rules
from repro.core import BsoloSolver, SolverOptions
from repro.pb import Constraint, Objective, PBInstance


def covering_instance():
    return PBInstance(
        [
            Constraint.clause([1, 2]),
            Constraint.clause([2, 3]),
            Constraint.clause([1, 3]),
        ],
        Objective({1: 3, 2: 2, 3: 2}),
    )


def solve_with_proof(instance, assumptions=None, **options):
    """Solve under a StringIO proof sink; returns (result, proof text)."""
    sink = StringIO()
    logger = ProofLogger(sink)
    solver = BsoloSolver(instance, SolverOptions(proof=logger, **options))
    result = solver.solve(assumptions=assumptions)
    logger.close()
    return result, sink.getvalue()


class TestFormatRoundTrip:
    def test_all_step_kinds_round_trip(self):
        constraint = Constraint.greater_equal([(2, 1), (1, -2)], 2)
        steps = [
            fmt.Step(fmt.ASSUMPTION, literals=(3,)),
            fmt.Step(fmt.RUP, literals=(1, -2)),
            fmt.Step(fmt.SOLUTION, literals=(1, -2, 3)),
            fmt.Step(fmt.CARD_CUT, ids=(2,)),
            fmt.Step(
                fmt.RESOLVE,
                base=1,
                ops=(("r", 2, 3), ("w",)),
                constraint=constraint,
            ),
            fmt.Step(
                fmt.BOUND_MIS, variables=(1,), ids=(2, 3), literals=(-1, 4)
            ),
            fmt.Step(
                fmt.BOUND_LIN, ids=(1, 2), multipliers=(3, 1), literals=(-1,)
            ),
            fmt.Step(fmt.CONTRADICTION),
            fmt.Step(fmt.END, status="optimal", cost=7),
        ]
        text = "\n".join(
            [fmt.HEADER, "f 3"] + [fmt.format_step(step) for step in steps]
        )
        num_inputs, parsed = fmt.parse_proof(text)
        assert num_inputs == 3
        assert len(parsed) == len(steps)
        for original, reparsed in zip(steps, parsed):
            assert reparsed.kind == original.kind
            assert fmt.format_step(reparsed) == fmt.format_step(original)
        assert parsed[4].constraint == constraint

    def test_bad_header_rejected(self):
        with pytest.raises(ProofSyntaxError):
            fmt.parse_proof("nope\nf 1\n")

    def test_syntax_error_carries_line(self):
        text = fmt.HEADER + "\nf 1\nu 1 2 0\nq broken\n"
        with pytest.raises(ProofSyntaxError) as info:
            fmt.parse_proof(text)
        assert info.value.line == 4

    def test_end_statuses_validated(self):
        with pytest.raises(ProofSyntaxError):
            fmt.parse_proof(fmt.HEADER + "\nf 0\ne maybe\n")
        with pytest.raises(ProofSyntaxError):
            fmt.parse_proof(fmt.HEADER + "\nf 0\ne optimal\n")  # cost missing


class TestRules:
    def test_combine_and_cut_off(self):
        c1 = Constraint.greater_equal([(1, 1), (1, 2)], 1)
        c2 = Constraint.greater_equal([(1, -1), (1, 2)], 1)
        combined = rules.combine([(c1, 1), (c2, 1)])
        # x1 cancels: 2*x2 >= 1, so the unit clause (2,) is cut off
        assert rules.clause_cut_off(combined, [2])
        assert not rules.clause_cut_off(c1, [2])

    def test_combine_rejects_nonpositive_multiplier(self):
        c1 = Constraint.clause([1])
        with pytest.raises(ValueError):
            rules.combine([(c1, 0)])

    def test_improvement_axiom(self):
        axiom = rules.improvement_axiom({1: 3, 2: 2}, 4)
        assert not axiom.is_satisfied_by({1: 1, 2: 1})  # cost 5 > 3
        assert axiom.is_satisfied_by({1: 1, 2: 0})  # cost 3 <= 3
        # constant objective: tautology
        assert rules.improvement_axiom({}, 0).is_tautology

    def test_cardinality_cut_matches_paper_eq13(self):
        # x1+x2+x3 >= 2 with member costs 1,2,3: V = 1+2 = 3
        source = Constraint.at_least([1, 2, 3], 2)
        costs = {1: 1, 2: 2, 3: 3, 4: 5}
        cut = rules.cardinality_cut(source, costs, upper=6)
        # outside budget: 6 - 1 - 3 = 2, so 5*x4 <= 2 forces x4 = 0
        assert cut is not None
        assert not cut.is_satisfied_by({4: 1})
        assert cut.is_satisfied_by({4: 0})

    def test_cardinality_cut_negative_budget_is_unsat(self):
        source = Constraint.at_least([1, 2], 2)
        cut = rules.cardinality_cut(source, {1: 5, 2: 5}, upper=4)
        assert cut is not None and cut.is_unsatisfiable

    def test_check_mis_bound_accepts_sound_accounting(self):
        c1 = Constraint.clause([1, 2])
        costs = {1: 2, 2: 2}
        # ~clause pins x1 = 0; satisfying c1 then costs 2 >= upper
        assert rules.check_mis_bound([1], [], [c1], costs, upper=2)
        assert not rules.check_mis_bound([1], [], [c1], costs, upper=3)

    def test_check_mis_bound_rejects_double_charge(self):
        c1 = Constraint.clause([1, 2])
        c2 = Constraint.clause([2, 3])
        costs = {1: 1, 2: 1, 3: 1}
        # both constraints would charge x2: disjointness is violated and
        # the combined accounting must be refused outright
        assert not rules.check_mis_bound([1, 3], [], [c1, c2], costs, upper=3)

    def test_replay_resolution(self):
        c1 = Constraint.greater_equal([(2, 1), (1, 2), (1, 3)], 2)
        c2 = Constraint.greater_equal([(2, -1), (1, 2), (1, 4)], 2)
        result = rules.replay_resolution(c1, [("r", 1, 2)], {1: c1, 2: c2})
        assert result is not None
        assert result.coefficient(1) == 0 and result.coefficient(-1) == 0
        # unknown antecedent id refuses the replay
        assert rules.replay_resolution(c1, [("r", 1, 9)], {1: c1, 2: c2}) is None


class TestEndToEnd:
    def test_optimal_proof_verifies(self):
        instance = covering_instance()
        result, text = solve_with_proof(instance)
        assert result.is_optimal
        outcome = ProofChecker(instance).check_text(text)
        assert outcome.certified
        assert outcome.status == "optimal"
        assert outcome.cost == result.best_cost
        assert not outcome.conditional
        assert outcome.model is not None

    def test_unsat_proof_verifies(self):
        instance = PBInstance(
            [
                Constraint.clause([1, 2]),
                Constraint.clause([-1, 2]),
                Constraint.clause([1, -2]),
                Constraint.clause([-1, -2]),
            ]
        )
        result, text = solve_with_proof(instance)
        assert result.status == "unsatisfiable"
        outcome = ProofChecker(instance).check_text(text)
        assert outcome.status == "unsatisfiable"
        assert outcome.model is None

    def test_constant_objective_satisfiable_claim(self):
        instance = PBInstance([Constraint.clause([1, 2])])
        result, text = solve_with_proof(instance)
        assert result.solved
        outcome = ProofChecker(instance).check_text(text)
        assert outcome.status == "satisfiable"

    def test_assumptions_make_claim_conditional(self):
        instance = PBInstance(
            [Constraint.clause([1, 2]), Constraint.clause([-2, 3])],
            Objective({1: 1, 2: 1, 3: 1}),
        )
        result, text = solve_with_proof(instance, assumptions=[2])
        assert result.solved
        outcome = ProofChecker(instance).check_text(text)
        assert outcome.conditional

    @pytest.mark.parametrize(
        "options",
        [
            {"propagation": "watched"},
            {"lb_schedule": "adaptive"},
            {"incremental_bounds": False},
            {"lower_bound": "mis"},
            {"lower_bound": "lgr"},
            {"pb_learning": True},
            {"bound_conflict_learning": False},
            {"restarts": True, "restart_interval": 4},
            {"upper_bound_cuts": False},
        ],
    )
    def test_option_mixes_all_certify(self, options):
        instance = covering_instance()
        result, text = solve_with_proof(instance, **options)
        assert result.is_optimal
        outcome = ProofChecker(instance).check_text(text)
        assert outcome.status == "optimal"
        assert outcome.cost == result.best_cost

    def test_quick_families_all_configs(self):
        """Certify-after-solve across families x engine/schedule configs."""
        from repro.experiments.certsmoke import run_certsmoke

        records = run_certsmoke(count=1, scale=0.25, time_limit=30.0)
        assert records, "no runs executed"
        bad = [row for row in records if not row["ok"]]
        assert not bad, bad

    def test_proof_mode_matches_reference_run(self):
        instance = covering_instance()
        reference = BsoloSolver(instance, SolverOptions()).solve()
        result, _ = solve_with_proof(instance)
        assert result.status == reference.status
        assert result.best_cost == reference.best_cost


class TestProofModeOptions:
    def test_proof_with_external_bound_rejected(self):
        with pytest.raises(ValueError):
            SolverOptions(proof=ProofLogger(StringIO()), external_bound=object())

    def test_set_upper_bound_declined_under_proof(self):
        logger = ProofLogger(StringIO())
        solver = BsoloSolver(covering_instance(), SolverOptions(proof=logger))
        assert solver.set_upper_bound(100) is False

    def test_logger_cannot_be_reused(self):
        instance = covering_instance()
        logger = ProofLogger(StringIO())
        BsoloSolver(instance, SolverOptions(proof=logger)).solve()
        with pytest.raises(RuntimeError):
            BsoloSolver(instance, SolverOptions(proof=logger)).solve()


class TestAdversarial:
    """Tampered proofs must be rejected with step-numbered errors."""

    def _valid_proof(self):
        instance = covering_instance()
        result, text = solve_with_proof(instance)
        assert result.is_optimal
        return instance, text

    def _assert_rejected(self, instance, text):
        with pytest.raises(ProofError) as info:
            ProofChecker(instance).check_text(text)
        assert "proof step" in str(info.value) or "header" in str(info.value)
        return info.value

    def test_wrong_final_cost_rejected(self):
        instance, text = self._valid_proof()
        lines = text.splitlines()
        assert lines[-1].startswith("e optimal")
        lines[-1] = "e optimal 0"
        error = self._assert_rejected(instance, "\n".join(lines))
        assert error.step > 0

    def test_dropped_solution_step_rejected(self):
        instance, text = self._valid_proof()
        lines = [line for line in text.splitlines() if not line.startswith("o ")]
        self._assert_rejected(instance, "\n".join(lines))

    def test_truncated_proof_rejected(self):
        instance, text = self._valid_proof()
        lines = text.splitlines()[:-1]  # drop the final 'e' claim
        error = self._assert_rejected(instance, "\n".join(lines))
        assert "truncated" in str(error)

    def test_steps_after_end_rejected(self):
        instance, text = self._valid_proof()
        error = self._assert_rejected(instance, text + "u 1 0\n")
        assert "after the final" in str(error)

    def test_bogus_model_rejected(self):
        instance, text = self._valid_proof()
        lines = text.splitlines()
        for index, line in enumerate(lines):
            if line.startswith("o "):
                # flip every literal: the model violates the clauses
                literals = [-int(tok) for tok in line.split()[1:]]
                lines[index] = "o " + " ".join(str(lit) for lit in literals)
                break
        self._assert_rejected(instance, "\n".join(lines))

    def test_wrong_input_count_rejected(self):
        instance, text = self._valid_proof()
        lines = text.splitlines()
        assert lines[1] == "f 3"
        lines[1] = "f 2"
        error = self._assert_rejected(instance, "\n".join(lines))
        assert error.step == 0  # header-level mismatch

    def test_mutated_resolvent_coefficient_rejected(self):
        # hand-build a proof whose 'p' step states a mutated resolvent
        c1 = Constraint.greater_equal([(2, 1), (1, 2), (1, 3)], 2)
        c2 = Constraint.greater_equal([(2, -1), (1, 2), (1, 4)], 2)
        instance = PBInstance([c1, c2])
        resolvent = rules.replay_resolution(c1, [("r", 1, 2)], {1: c1, 2: c2})
        good = "\n".join(
            [
                fmt.HEADER,
                "f 2",
                fmt.format_step(
                    fmt.Step(
                        fmt.RESOLVE,
                        base=1,
                        ops=(("r", 1, 2),),
                        constraint=resolvent,
                    )
                ),
                "e unknown",
                "",
            ]
        )
        ProofChecker(instance).check_text(good)  # sanity: verifies
        mutated = rules.combine([(resolvent, 2)])  # doubled coefficients
        bad = good.replace(
            fmt.format_constraint(resolvent), fmt.format_constraint(mutated)
        )
        assert bad != good
        error = self._assert_rejected(instance, bad)
        assert error.step == 1

    def test_forged_bound_explanation_rejected(self):
        # c1 justifies the bound clause, unrelated c2 does not
        c1 = Constraint.clause([1, 2])
        c2 = Constraint.clause([3, 4])
        instance = PBInstance([c1, c2], Objective({1: 2, 2: 2}))
        header = [fmt.HEADER, "f 2"]
        solution = fmt.format_step(
            fmt.Step(fmt.SOLUTION, literals=(1, -2, -3, 4))
        )  # cost 2 -> axiom id 3

        def bound(cid):
            return fmt.format_step(
                fmt.Step(
                    fmt.BOUND_MIS, variables=(), ids=(cid,), literals=(1,)
                )
            )

        good = "\n".join(header + [solution, bound(1), "e unknown", ""])
        ProofChecker(instance).check_text(good)  # sanity: c1 justifies it
        forged = "\n".join(header + [solution, bound(2), "e unknown", ""])
        error = self._assert_rejected(instance, forged)
        assert error.step == 2
        assert "MIS accounting" in str(error)

    def test_wrong_linear_multiplier_rejected(self):
        # multiplier 0 (and a combination too weak to cut the clause off)
        c1 = Constraint.greater_equal([(1, 1), (1, 2)], 1)
        instance = PBInstance([c1], Objective({1: 1, 2: 1}))
        header = [fmt.HEADER, "f 1"]
        solution = fmt.format_step(
            fmt.Step(fmt.SOLUTION, literals=(1, -2))
        )  # cost 1 -> axiom id 2: x1 + x2 <= 0

        def lin(ids, multipliers):
            return fmt.format_step(
                fmt.Step(
                    fmt.BOUND_LIN,
                    ids=ids,
                    multipliers=multipliers,
                    literals=(-1,),
                )
            )

        good = "\n".join(
            header + [solution, lin((1, 2), (1, 1)), "e unknown", ""]
        )
        ProofChecker(instance).check_text(good)  # sanity
        zero = "\n".join(
            header + [solution, lin((1, 2), (1, 0)), "e unknown", ""]
        )
        error = self._assert_rejected(instance, zero)
        assert "multiplier" in str(error)
        weak = "\n".join(header + [solution, lin((1,), (5,)), "e unknown", ""])
        error = self._assert_rejected(instance, weak)
        assert error.step == 2


class TestCheckerIsolation:
    def test_checker_imports_no_search_code(self):
        """The trust base excludes repro.core and repro.engine entirely.

        Audits every import statement in src/repro/certify: the checker
        may depend on repro.pb arithmetic only, never on the search code
        whose answers it is supposed to verify.
        """
        import ast
        import pathlib

        import repro.certify

        package = pathlib.Path(repro.certify.__file__).parent
        forbidden = ("repro.core", "repro.engine")
        leaked = []
        for path in sorted(package.glob("*.py")):
            tree = ast.parse(path.read_text(), filename=str(path))
            for node in ast.walk(tree):
                if isinstance(node, ast.Import):
                    names = [alias.name for alias in node.names]
                elif isinstance(node, ast.ImportFrom):
                    if node.level:  # relative: resolve against repro.certify
                        base = "repro" if node.level == 2 else "repro.certify"
                        module = node.module or ""
                        names = [
                            ".".join(filter(None, (base, module, alias.name)))
                            for alias in node.names
                        ]
                    else:
                        names = [node.module or ""]
                else:
                    continue
                leaked.extend(
                    (path.name, name)
                    for name in names
                    if name.startswith(forbidden)
                )
        assert not leaked, leaked

    def test_certify_package_importable_standalone(self):
        """`import repro.certify` works in a fresh interpreter."""
        completed = subprocess.run(
            [sys.executable, "-c", "import repro.certify"],
            capture_output=True,
            text=True,
        )
        assert completed.returncode == 0, completed.stderr


class TestCli:
    def test_certify_main_round_trip(self, tmp_path, capsys):
        from repro.cli import certify_main, main
        from repro.pb.opb import write_file

        instance = covering_instance()
        opb = tmp_path / "instance.opb"
        proof = tmp_path / "proof.pbp"
        write_file(instance, str(opb))
        assert main([str(opb), "--solver", "bsolo-lpr", "--proof", str(proof)]) == 0
        out = capsys.readouterr().out
        assert "c proof file=" in out
        assert certify_main([str(opb), str(proof)]) == 0
        out = capsys.readouterr().out
        assert "s VERIFIED" in out
        assert "c claim optimal" in out

    def test_certify_main_rejects_tampered(self, tmp_path, capsys):
        from repro.cli import certify_main, main
        from repro.pb.opb import write_file

        instance = covering_instance()
        opb = tmp_path / "instance.opb"
        proof = tmp_path / "proof.pbp"
        write_file(instance, str(opb))
        assert main([str(opb), "--proof", str(proof)]) == 0
        capsys.readouterr()
        text = proof.read_text().splitlines()
        text[-1] = "e optimal 0"
        tampered = tmp_path / "tampered.pbp"
        tampered.write_text("\n".join(text) + "\n")
        assert certify_main([str(opb), str(tampered)]) == 2
        out = capsys.readouterr().out
        assert "s NOT VERIFIED" in out
        assert "proof step" in out

    def test_proof_flag_guards(self, tmp_path):
        from repro.cli import main
        from repro.pb.opb import write_file

        opb = tmp_path / "instance.opb"
        write_file(covering_instance(), str(opb))
        with pytest.raises(SystemExit):
            main([str(opb), "--proof", "x.pbp", "--portfolio", "2"])
        with pytest.raises(SystemExit):
            main([str(opb), "--proof", "x.pbp", "--solver", "pbs"])


class TestStats:
    def test_uncertified_prunes_counter_present(self):
        result, _ = solve_with_proof(covering_instance())
        stats = result.stats.as_dict()
        assert "uncertified_prunes" in stats
