"""Tests for the classical covering branch-and-bound solver."""

import pytest

from repro.baselines import BruteForceSolver, CoveringBnBSolver
from repro.core import OPTIMAL, SATISFIABLE, UNKNOWN, UNSATISFIABLE
from repro.pb import Constraint, Objective, PBInstance


def covering_instance():
    return PBInstance(
        [
            Constraint.clause([1, 2]),
            Constraint.clause([2, 3]),
            Constraint.clause([1, 3]),
        ],
        Objective({1: 3, 2: 2, 3: 2}),
    )


class TestBasics:
    def test_requires_covering(self):
        general = PBInstance([Constraint.greater_equal([(2, 1), (1, 2)], 2)])
        with pytest.raises(ValueError):
            CoveringBnBSolver(general)

    def test_optimum(self):
        result = CoveringBnBSolver(covering_instance()).solve()
        assert result.status == OPTIMAL
        assert result.best_cost == 4
        assert covering_instance().check(result.best_assignment)

    def test_unsat(self):
        instance = PBInstance(
            [
                Constraint.clause([1, 2]),
                Constraint.clause([-1, 2]),
                Constraint.clause([1, -2]),
                Constraint.clause([-1, -2]),
            ]
        )
        result = CoveringBnBSolver(instance).solve()
        assert result.status == UNSATISFIABLE

    def test_satisfaction(self):
        instance = PBInstance([Constraint.clause([1, -2])])
        result = CoveringBnBSolver(instance).solve()
        assert result.status == SATISFIABLE
        assert instance.check(result.best_assignment)

    def test_binate_instance(self):
        instance = PBInstance(
            [
                Constraint.clause([1, 2]),
                Constraint.clause([-1, 3]),
                Constraint.clause([-2, -3]),
            ],
            Objective({1: 1, 2: 1, 3: 5}),
        )
        expected = BruteForceSolver(instance).solve()
        result = CoveringBnBSolver(instance).solve()
        assert result.best_cost == expected.best_cost

    def test_stats_populated(self):
        solver = CoveringBnBSolver(covering_instance())
        result = solver.solve()
        assert result.stats.lower_bound_calls >= 1
        assert result.stats.elapsed >= 0


class TestBudgets:
    def test_node_limit(self):
        result = CoveringBnBSolver(covering_instance(), max_nodes=0).solve()
        assert result.status in (UNKNOWN, OPTIMAL)

    def test_time_limit(self):
        result = CoveringBnBSolver(covering_instance(), time_limit=0.0).solve()
        assert result.status in (UNKNOWN, OPTIMAL)


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(15))
    def test_random_covering(self, seed):
        import random

        rng = random.Random(2500 + seed)
        n = rng.randint(3, 7)
        constraints = []
        for _ in range(rng.randint(2, 9)):
            variables = rng.sample(range(1, n + 1), rng.randint(1, min(4, n)))
            constraints.append(
                Constraint.clause(
                    [v if rng.random() < 0.65 else -v for v in variables]
                )
            )
        instance = PBInstance(
            constraints,
            Objective({v: rng.randint(0, 5) for v in range(1, n + 1)}),
            num_variables=n,
        )
        expected = BruteForceSolver(instance).solve()
        result = CoveringBnBSolver(instance).solve()
        assert result.status == expected.status
        if expected.best_cost is not None:
            assert result.best_cost == expected.best_cost
            assert instance.check(result.best_assignment)

    def test_against_bsolo_on_generated_covering(self):
        from repro.benchgen import generate_covering
        from repro.core import SolverOptions, solve

        instance = generate_covering(
            minterms=25, implicants=14, density=0.2, max_cost=25, seed=9
        )
        classical = CoveringBnBSolver(instance, time_limit=30.0).solve()
        modern = solve(instance, SolverOptions(lower_bound="lpr", time_limit=30.0))
        assert classical.solved and modern.solved
        assert classical.best_cost == modern.best_cost
