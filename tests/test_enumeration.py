"""Tests for optimal-solution enumeration and the hybrid bound."""

import itertools

import pytest

from repro.baselines import BruteForceSolver
from repro.core import (
    BsoloSolver,
    SolverOptions,
    OPTIMAL,
    count_optimal,
    enumerate_optimal,
    solve,
)
from repro.pb import Constraint, Objective, PBInstance


def all_optima_brute_force(instance):
    best = None
    solutions = []
    n = instance.num_variables
    for bits in itertools.product((0, 1), repeat=n):
        assignment = {v: bits[v - 1] for v in range(1, n + 1)}
        if not instance.check(assignment):
            continue
        cost = instance.cost(assignment)
        if best is None or cost < best:
            best = cost
            solutions = [assignment]
        elif cost == best:
            solutions.append(assignment)
    return best, solutions


class TestEnumeration:
    def test_single_optimum(self):
        instance = PBInstance(
            [Constraint.clause([1, 2])], Objective({1: 1, 2: 2})
        )
        # optimum 1 achieved only by x1=1, x2=0
        solutions = list(enumerate_optimal(instance))
        assert solutions == [{1: 1, 2: 0}]

    def test_multiple_optima(self):
        instance = PBInstance(
            [Constraint.clause([1, 2])], Objective({1: 2, 2: 2})
        )
        solutions = list(enumerate_optimal(instance))
        assert len(solutions) == 2
        assert {1: 1, 2: 0} in solutions and {1: 0, 2: 1} in solutions

    def test_limit_respected(self):
        instance = PBInstance(
            [Constraint.clause([1, 2])], Objective({1: 2, 2: 2})
        )
        assert len(list(enumerate_optimal(instance, limit=1))) == 1

    def test_unsat_yields_nothing(self):
        instance = PBInstance(
            [
                Constraint.clause([1]),
                Constraint.clause([-1]),
            ]
        )
        assert list(enumerate_optimal(instance)) == []

    def test_satisfaction_enumerates_models(self):
        instance = PBInstance([Constraint.clause([1, 2])], num_variables=2)
        models = list(enumerate_optimal(instance))
        assert len(models) == 3  # all but {0,0}
        for model in models:
            assert instance.check(model)

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_brute_force(self, seed):
        import random

        rng = random.Random(600 + seed)
        n = rng.randint(3, 5)
        constraints = []
        for _ in range(rng.randint(2, 5)):
            variables = rng.sample(range(1, n + 1), rng.randint(1, n))
            constraints.append(
                Constraint.clause(
                    [v if rng.random() < 0.6 else -v for v in variables]
                )
            )
        instance = PBInstance(
            constraints,
            Objective({v: rng.randint(0, 3) for v in range(1, n + 1)}),
            num_variables=n,
        )
        best, expected = all_optima_brute_force(instance)
        found = list(enumerate_optimal(instance, limit=200))
        if best is None:
            assert found == []
        else:
            as_tuples = {tuple(sorted(s.items())) for s in found}
            expected_tuples = {tuple(sorted(s.items())) for s in expected}
            assert as_tuples == expected_tuples

    def test_count_optimal(self):
        instance = PBInstance(
            [Constraint.clause([1, 2])], Objective({1: 2, 2: 2})
        )
        assert count_optimal(instance) == 2


class TestHybridBound:
    def test_hybrid_solves_covering(self):
        instance = PBInstance(
            [
                Constraint.clause([1, 2]),
                Constraint.clause([2, 3]),
                Constraint.clause([1, 3]),
            ],
            Objective({1: 3, 2: 2, 3: 2}),
        )
        result = solve(instance, SolverOptions(lower_bound="hybrid"))
        assert result.status == OPTIMAL and result.best_cost == 4

    @pytest.mark.parametrize("seed", range(8))
    def test_hybrid_against_brute_force(self, seed):
        from repro.benchgen import generate_random

        instance = generate_random(
            num_variables=6, num_constraints=8, seed=1200 + seed
        )
        expected = BruteForceSolver(instance).solve()
        result = solve(instance, SolverOptions(lower_bound="hybrid"))
        assert result.status == expected.status
        if expected.best_cost is not None:
            assert result.best_cost == expected.best_cost

    def test_hybrid_skips_lp_when_mis_prunes(self):
        # two disjoint expensive clauses: MIS bound = optimum, so after the
        # first solution every node prunes on MIS alone
        instance = PBInstance(
            [Constraint.clause([1, 2]), Constraint.clause([3, 4])],
            Objective({1: 5, 2: 5, 3: 5, 4: 5}),
        )
        options = SolverOptions(
            lower_bound="hybrid", covering_reductions=False, preprocess=False
        )
        solver = BsoloSolver(instance, options)
        result = solver.solve()
        assert result.status == OPTIMAL and result.best_cost == 10
        assert solver._prefilter.num_calls > 0