"""Unit tests for the Lagrangian relaxation bound."""

import itertools

import pytest

from repro.lagrangian import LagrangianBound, SubgradientOptions
from repro.lp import LPRelaxationBound
from repro.pb import Constraint, Objective, PBInstance


def covering_instance():
    return PBInstance(
        [
            Constraint.clause([1, 2]),
            Constraint.clause([2, 3]),
            Constraint.clause([1, 3]),
        ],
        Objective({1: 3, 2: 2, 3: 2}),
    )


def brute_force_optimum(instance):
    best = None
    n = instance.num_variables
    for bits in itertools.product([0, 1], repeat=n):
        assignment = {v: bits[v - 1] for v in range(1, n + 1)}
        if instance.check(assignment):
            cost = instance.cost(assignment)
            best = cost if best is None else min(best, cost)
    return best


class TestBoundValue:
    def test_positive_bound_on_covering(self):
        bound = LagrangianBound(covering_instance()).compute({})
        assert not bound.infeasible
        assert bound.value >= 1

    def test_never_exceeds_optimum(self):
        instance = covering_instance()
        optimum = brute_force_optimum(instance)
        bound = LagrangianBound(instance).compute({})
        assert bound.value <= optimum

    def test_weak_duality_vs_lpr(self):
        # L* equals the LP bound for this relaxation (integrality property
        # of the 0/1 box); subgradient approaches from below.
        instance = covering_instance()
        lpr = LPRelaxationBound(instance).compute({}).value
        lgr = LagrangianBound(
            instance, SubgradientOptions(max_iterations=500)
        ).compute({})
        assert lgr.value <= lpr

    def test_nothing_left(self):
        bound = LagrangianBound(covering_instance()).compute({1: 1, 2: 1, 3: 1})
        assert bound.value == 0

    def test_infeasible_fixing(self):
        instance = PBInstance([Constraint.clause([1, 2])], Objective({1: 1}))
        bound = LagrangianBound(instance).compute({1: 0, 2: 0})
        assert bound.infeasible

    def test_more_iterations_never_worse(self):
        instance = covering_instance()
        short = LagrangianBound(instance, SubgradientOptions(max_iterations=3))
        long = LagrangianBound(instance, SubgradientOptions(max_iterations=200))
        assert long.compute({}).value >= short.compute({}).value

    @pytest.mark.parametrize("seed", range(6))
    def test_soundness_random(self, seed):
        import random

        rng = random.Random(seed)
        n = rng.randint(2, 5)
        constraints = []
        for _ in range(rng.randint(1, 4)):
            size = rng.randint(1, n)
            variables = rng.sample(range(1, n + 1), size)
            terms = [(rng.randint(1, 3), v if rng.random() < 0.7 else -v) for v in variables]
            constraint = Constraint.greater_equal(terms, rng.randint(1, 3))
            if not constraint.is_tautology and not constraint.is_unsatisfiable:
                constraints.append(constraint)
        if not constraints:
            pytest.skip("degenerate draw")
        instance = PBInstance(
            constraints, Objective({v: rng.randint(0, 4) for v in range(1, n + 1)}),
            num_variables=n,
        )
        optimum = brute_force_optimum(instance)
        if optimum is None:
            return
        bound = LagrangianBound(instance).compute({})
        assert bound.value <= optimum


class TestExplanations:
    def test_explanation_has_active_constraints(self):
        instance = covering_instance()
        bound = LagrangianBound(instance).compute({})
        assert bound.explanation  # some multipliers must be active
        for constraint in bound.explanation:
            assert constraint in instance.constraints

    def test_duals_all_positive(self):
        bound = LagrangianBound(covering_instance()).compute({})
        assert all(mu > 0 for mu in bound.duals_by_row.values())

    def test_warm_start_accepted(self):
        instance = covering_instance()
        lpr = LPRelaxationBound(instance).compute({})
        lgr = LagrangianBound(instance).compute({}, warm_start=lpr.duals_by_row)
        assert lgr.value >= 0

    def test_alpha_of_assigned(self):
        instance = covering_instance()
        lgr = LagrangianBound(instance)
        bound = lgr.compute({1: 0})
        alpha = lgr.alpha_of_assigned({1: 0}, bound.duals_by_row)
        assert 1 in alpha
        # alpha_1 = c_1 - sum(mu_i * w_i1) <= c_1
        assert alpha[1] <= instance.objective.costs[1] + 1e-9


class TestConvergenceTrace:
    def test_trace_recorded(self):
        lgr = LagrangianBound(covering_instance(), SubgradientOptions(max_iterations=50))
        lgr.compute({})
        assert len(lgr.last_trace) > 1

    def test_trace_monotone_best(self):
        import math

        lgr = LagrangianBound(covering_instance(), SubgradientOptions(max_iterations=50))
        bound = lgr.compute({})
        running_best = max(lgr.last_trace)
        # the reported bound is ceil(best L(mu)) and never more
        assert bound.value <= math.ceil(running_best - 1e-6) or bound.value == 0
