"""Tests for solve-under-assumptions and the solution callback."""

import pytest

from repro.core import (
    BsoloSolver,
    SolverOptions,
    OPTIMAL,
    SATISFIABLE,
    UNSATISFIABLE,
)
from repro.pb import Constraint, Objective, PBInstance


def covering_instance():
    return PBInstance(
        [
            Constraint.clause([1, 2]),
            Constraint.clause([2, 3]),
            Constraint.clause([1, 3]),
        ],
        Objective({1: 3, 2: 2, 3: 2}),
    )


class TestAssumptions:
    def test_assumption_changes_optimum(self):
        instance = covering_instance()
        free = BsoloSolver(instance).solve()
        assert free.best_cost == 4  # b + c
        # forbid variable 2: optimum becomes a + c = 5
        constrained = BsoloSolver(instance).solve(assumptions=[-2])
        assert constrained.status == OPTIMAL
        assert constrained.best_cost == 5
        assert constrained.best_assignment[2] == 0

    def test_positive_assumption_respected(self):
        instance = covering_instance()
        result = BsoloSolver(instance).solve(assumptions=[1])
        assert result.status == OPTIMAL
        assert result.best_assignment[1] == 1
        assert result.best_cost >= 3

    def test_contradictory_assumptions_unsat(self):
        instance = covering_instance()
        result = BsoloSolver(instance).solve(assumptions=[1, -1])
        assert result.status == UNSATISFIABLE

    def test_assumption_conflicting_with_constraints(self):
        instance = PBInstance([Constraint.clause([1])])
        result = BsoloSolver(instance).solve(assumptions=[-1])
        assert result.status == UNSATISFIABLE

    def test_out_of_range_assumption_rejected(self):
        instance = covering_instance()
        with pytest.raises(ValueError):
            BsoloSolver(instance).solve(assumptions=[99])

    def test_assumptions_on_satisfaction_instance(self):
        instance = PBInstance([Constraint.clause([1, 2])])
        result = BsoloSolver(instance).solve(assumptions=[-1])
        assert result.status == SATISFIABLE
        assert result.best_assignment[2] == 1

    def test_assumptions_disable_covering_reductions(self):
        # dominance would force x2 = 0 here (x1 cheaper, covers more);
        # assuming x2 = 1 must still find the x2 solution
        instance = PBInstance(
            [Constraint.clause([1, 2]), Constraint.clause([1, 3])],
            Objective({1: 2, 2: 5, 3: 5}),
        )
        result = BsoloSolver(instance).solve(assumptions=[2])
        assert result.status == OPTIMAL
        assert result.best_assignment[2] == 1

    def test_solver_reuse_not_required(self):
        # two fresh solvers with different assumptions
        instance = covering_instance()
        first = BsoloSolver(instance).solve(assumptions=[-1])
        second = BsoloSolver(instance).solve(assumptions=[-3])
        assert first.status == second.status == OPTIMAL
        assert first.best_cost == 4 and second.best_cost == 5


class TestSolutionCallback:
    def test_callback_sees_improving_sequence(self):
        trace = []

        def record(cost, assignment):
            trace.append((cost, assignment))

        instance = covering_instance()
        options = SolverOptions(
            lower_bound="plain", on_new_solution=record
        )
        result = BsoloSolver(instance, options).solve()
        assert result.status == OPTIMAL
        costs = [cost for cost, _ in trace]
        assert costs, "callback never fired"
        assert costs == sorted(costs, reverse=True)  # strictly improving
        assert costs[-1] == result.best_cost
        # assignments are snapshots, complete, and feasible
        for cost, assignment in trace:
            assert instance.check(assignment)
            assert instance.cost(assignment) == cost

    def test_callback_gets_offset_adjusted_cost(self):
        instance = PBInstance(
            [Constraint.clause([1])], Objective({1: 2}, offset=10)
        )
        seen = []
        options = SolverOptions(on_new_solution=lambda c, a: seen.append(c))
        BsoloSolver(instance, options).solve()
        assert seen == [12]
