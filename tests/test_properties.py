"""Property-based tests (hypothesis) for core invariants."""

import itertools

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import BruteForceSolver, cardinality_reduction
from repro.core import SolverOptions, UNSATISFIABLE, solve
from repro.core.cuts import CutGenerator
from repro.engine import Propagator
from repro.lagrangian import LagrangianBound
from repro.lp import LPRelaxationBound
from repro.mis import MISBound
from repro.pb import Constraint, Objective, PBInstance, parse, write

SLOW = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
@st.composite
def raw_terms(draw, max_var=5):
    size = draw(st.integers(1, max_var))
    variables = draw(
        st.lists(
            st.integers(1, max_var), min_size=size, max_size=size, unique=True
        )
    )
    terms = []
    for var in variables:
        coef = draw(st.integers(-5, 5))
        literal = var if draw(st.booleans()) else -var
        terms.append((coef, literal))
    rhs = draw(st.integers(-6, 10))
    return terms, rhs


@st.composite
def pb_instances(draw, max_var=5, max_constraints=5, satisfaction=False):
    n = draw(st.integers(2, max_var))
    constraints = []
    for _ in range(draw(st.integers(1, max_constraints))):
        size = draw(st.integers(1, n))
        variables = draw(
            st.lists(st.integers(1, n), min_size=size, max_size=size, unique=True)
        )
        terms = []
        for var in variables:
            coef = draw(st.integers(1, 4))
            literal = var if draw(st.booleans()) else -var
            terms.append((coef, literal))
        rhs = draw(st.integers(1, sum(c for c, _ in terms)))
        constraint = Constraint.greater_equal(terms, rhs)
        if not constraint.is_tautology and not constraint.is_unsatisfiable:
            constraints.append(constraint)
    if not constraints:
        constraints = [Constraint.clause([1])]
    if satisfaction:
        objective = Objective({})
    else:
        objective = Objective(
            {var: draw(st.integers(0, 5)) for var in range(1, n + 1)}
        )
    return PBInstance(constraints, objective, num_variables=n)


def all_assignments(n):
    for bits in itertools.product((0, 1), repeat=n):
        yield {var: bits[var - 1] for var in range(1, n + 1)}


# ----------------------------------------------------------------------
# Normalization
# ----------------------------------------------------------------------
class TestNormalizationProperties:
    @SLOW
    @given(raw_terms())
    def test_normal_form_invariants(self, data):
        terms, rhs = data
        constraint = Constraint.greater_equal(terms, rhs)
        assert constraint.rhs >= 0
        seen_vars = set()
        for coef, lit in constraint.terms:
            assert coef > 0
            assert coef <= constraint.rhs
            var = abs(lit)
            assert var not in seen_vars
            seen_vars.add(var)

    @SLOW
    @given(raw_terms())
    def test_normalization_preserves_models(self, data):
        terms, rhs = data
        constraint = Constraint.greater_equal(terms, rhs)
        variables = {abs(l) for _, l in terms} | {abs(l) for l in constraint.literals}
        if not variables:
            return
        n = max(variables)
        for assignment in all_assignments(n):
            raw_lhs = 0
            for coef, lit in terms:
                var = abs(lit)
                value = assignment[var] if lit > 0 else 1 - assignment[var]
                raw_lhs += coef * value
            raw_sat = raw_lhs >= rhs
            norm_sat = (
                True
                if constraint.is_tautology
                else constraint.is_satisfied_by(assignment)
            )
            assert raw_sat == norm_sat

    @SLOW
    @given(raw_terms())
    def test_integer_form_equivalence(self, data):
        terms, rhs = data
        constraint = Constraint.greater_equal(terms, rhs)
        weights, r = constraint.integer_form()
        variables = {abs(l) for _, l in constraint.terms}
        if not variables:
            return
        n = max(variables)
        for assignment in all_assignments(n):
            lhs = sum(w * assignment[var] for var, w in weights.items())
            assert (lhs >= r) == constraint.is_satisfied_by(assignment)


# ----------------------------------------------------------------------
# OPB round trip
# ----------------------------------------------------------------------
class TestOPBProperties:
    @SLOW
    @given(pb_instances())
    def test_round_trip(self, instance):
        reparsed = parse(write(instance))
        assert set(reparsed.constraints) == set(instance.constraints)
        assert reparsed.objective.costs == instance.objective.costs


# ----------------------------------------------------------------------
# Lower bound soundness
# ----------------------------------------------------------------------
class TestBoundSoundness:
    @SLOW
    @given(pb_instances())
    def test_all_bounds_below_optimum(self, instance):
        best = None
        for assignment in all_assignments(instance.num_variables):
            if instance.check(assignment):
                cost = instance.cost(assignment)
                best = cost if best is None else min(best, cost)
        if best is None:
            return
        for bounder in (
            MISBound(instance),
            LagrangianBound(instance),
            LPRelaxationBound(instance),
        ):
            bound = bounder.compute({})
            if not bound.infeasible:
                assert bound.value <= best, type(bounder).__name__

    @SLOW
    @given(pb_instances(), st.integers(0, 100))
    def test_bounds_under_partial_fixing(self, instance, salt):
        import random

        rng = random.Random(salt)
        fixed = {
            var: rng.randint(0, 1)
            for var in range(1, instance.num_variables + 1)
            if rng.random() < 0.4
        }
        best_completion = None
        for assignment in all_assignments(instance.num_variables):
            if any(assignment[var] != value for var, value in fixed.items()):
                continue
            if instance.check(assignment):
                remaining = sum(
                    cost
                    for var, cost in instance.objective.costs.items()
                    if var not in fixed and assignment[var] == 1
                )
                if best_completion is None or remaining < best_completion:
                    best_completion = remaining
        for bounder in (
            MISBound(instance),
            LagrangianBound(instance),
            LPRelaxationBound(instance),
        ):
            try:
                bound = bounder.compute(fixed)
            except Exception:  # pragma: no cover - restricted() rejects
                continue
            if best_completion is None:
                continue  # any value is vacuously a bound; infeasible ok
            if not bound.infeasible:
                assert bound.value <= best_completion, type(bounder).__name__


# ----------------------------------------------------------------------
# End-to-end solver agreement
# ----------------------------------------------------------------------
class TestSolverAgreement:
    @SLOW
    @given(pb_instances(), st.sampled_from(["plain", "mis", "lgr", "lpr"]))
    def test_bsolo_matches_brute_force(self, instance, method):
        expected = BruteForceSolver(instance).solve()
        result = solve(instance, SolverOptions(lower_bound=method))
        assert result.solved
        if expected.status == UNSATISFIABLE:
            assert result.status == UNSATISFIABLE
        else:
            assert result.best_cost == expected.best_cost
            assert instance.check(result.best_assignment)

    @SLOW
    @given(pb_instances(satisfaction=True))
    def test_satisfaction_agreement(self, instance):
        expected = BruteForceSolver(instance).solve()
        result = solve(instance)
        if expected.status == UNSATISFIABLE:
            assert result.status == UNSATISFIABLE
        else:
            assert result.status == "satisfiable"
            assert instance.check(result.best_assignment)


# ----------------------------------------------------------------------
# Engine invariants
# ----------------------------------------------------------------------
class TestEngineProperties:
    @SLOW
    @given(pb_instances(satisfaction=True), st.lists(st.integers(), max_size=8))
    def test_slacks_consistent_under_search(self, instance, moves):
        propagator = Propagator(instance.num_variables)
        for constraint in instance.constraints:
            propagator.add_constraint(constraint)
        propagator.propagate()
        for move in moves:
            unassigned = propagator.trail.unassigned_variables()
            if not unassigned or move % 3 == 0:
                level = propagator.trail.decision_level
                if level:
                    propagator.backtrack(max(0, level - 1 - (move % 2)))
                continue
            var = unassigned[move % len(unassigned)]
            propagator.decide(var if move % 2 else -var)
            propagator.propagate()
        propagator.database.check_slacks()


# ----------------------------------------------------------------------
# Cuts and reductions
# ----------------------------------------------------------------------
class TestCutProperties:
    @SLOW
    @given(pb_instances(), st.integers(1, 25))
    def test_cuts_keep_strictly_better_solutions(self, instance, upper):
        cuts, proven = CutGenerator(instance).cuts_for(upper)
        for assignment in all_assignments(instance.num_variables):
            if not instance.check(assignment):
                continue
            cost = instance.objective.path_cost(assignment)
            if cost < upper:
                assert not proven
                for cut in cuts:
                    assert cut.is_satisfied_by(assignment)

    @SLOW
    @given(raw_terms())
    def test_cardinality_reduction_implied(self, data):
        terms, rhs = data
        constraint = Constraint.greater_equal(terms, rhs)
        if constraint.is_tautology or constraint.is_unsatisfiable:
            return
        reduced = cardinality_reduction(constraint)
        if reduced is None:
            return
        n = max(abs(l) for l in constraint.literals)
        for assignment in all_assignments(n):
            if constraint.is_satisfied_by(assignment):
                assert reduced.is_satisfied_by(assignment)
