"""Unit tests for PBInstance."""

import pytest

from repro.pb import Constraint, InfeasibleConstraintError, Objective, PBInstance


def small_instance():
    constraints = [
        Constraint.clause([1, 2]),
        Constraint.greater_equal([(2, -1), (1, 3)], 2),
    ]
    return PBInstance(constraints, Objective({1: 5, 2: 1, 3: 1}))


class TestConstruction:
    def test_basic(self):
        instance = small_instance()
        assert instance.num_variables == 3
        assert instance.num_constraints == 2

    def test_tautologies_dropped(self):
        instance = PBInstance([Constraint.greater_equal([(1, 1)], 0)])
        assert instance.num_constraints == 0

    def test_unsatisfiable_constraint_rejected(self):
        bad = Constraint.greater_equal([(1, 1)], 5, )
        with pytest.raises(InfeasibleConstraintError):
            PBInstance([bad])

    def test_num_variables_override(self):
        instance = PBInstance([Constraint.clause([1])], num_variables=10)
        assert instance.num_variables == 10

    def test_num_variables_too_small_rejected(self):
        with pytest.raises(ValueError):
            PBInstance([Constraint.clause([5])], num_variables=3)

    def test_objective_extends_variable_range(self):
        instance = PBInstance([Constraint.clause([1])], Objective({7: 2}))
        assert instance.num_variables == 7

    def test_default_objective_is_constant(self):
        instance = PBInstance([Constraint.clause([1])])
        assert instance.is_satisfaction


class TestPredicates:
    def test_is_covering(self):
        covering = PBInstance([Constraint.clause([1, -2]), Constraint.clause([2, 3])])
        assert covering.is_covering
        general = PBInstance([Constraint.greater_equal([(1, 1), (2, 2)], 2)])
        assert not general.is_covering

    def test_check_and_cost(self):
        instance = small_instance()
        solution = {1: 0, 2: 1, 3: 0}
        assert instance.check(solution)
        assert instance.cost(solution) == 1
        assert not instance.check({1: 1, 2: 0, 3: 0})

    def test_variables_range(self):
        assert list(small_instance().variables()) == [1, 2, 3]


class TestRestricted:
    def test_satisfied_constraints_removed(self):
        instance = small_instance()
        restricted = instance.restricted({2: 1, 1: 0})
        # clause (x1 | x2) satisfied by x2=1; second constraint satisfied by
        # ~x1 (coefficient 2 >= rhs 2)
        assert restricted.num_constraints == 0
        assert restricted.objective.costs == {3: 1}

    def test_partial_reduction(self):
        instance = small_instance()
        # fixing x1=1 leaves 1*x3 >= 2 in the general constraint, which is
        # detected as unsatisfiable immediately
        with pytest.raises(InfeasibleConstraintError):
            instance.restricted({1: 1})
        # fixing x3=1 reduces the general constraint to 2*~x1 >= 1
        restricted = instance.restricted({3: 1})
        reduced = [c for c in restricted.constraints if -1 in c.literals]
        assert reduced and reduced[0].rhs == 1

    def test_reduction_keeps_indices(self):
        instance = small_instance()
        restricted = instance.restricted({1: 0})
        assert restricted.num_variables == instance.num_variables
        for constraint in restricted.constraints:
            assert 1 not in constraint.variables


class TestStatistics:
    def test_counts(self):
        constraints = [
            Constraint.clause([1, 2]),
            Constraint.at_least([1, 2, 3], 2),
            Constraint.greater_equal([(1, 1), (2, 2)], 2),
        ]
        stats = PBInstance(constraints, Objective({1: 1})).statistics()
        assert stats["clauses"] == 1
        assert stats["cardinality"] == 1
        assert stats["general"] == 1
        assert stats["costed_variables"] == 1

    def test_repr(self):
        assert "3 vars" in repr(small_instance())
