"""Tests for the hotspot profiler (repro.obs.prof).

Covers lifecycle idempotence, phase attribution through the PhaseTimer
listener, the collapsed-stack interchange format, the top-N tables, and
end-to-end integration with a real solve.
"""

from __future__ import annotations

import io
import re
import sys

from repro import SolverOptions, parse, solve
from repro.obs.prof import (
    HotspotProfiler,
    MAIN_PHASE,
    format_hotspots,
)
from repro.obs.timers import PhaseTimer

OPT_INSTANCE = """\
* #variable= 3 #constraint= 3
min: +1 x1 +2 x2 +3 x3 ;
+1 x1 +1 x2 >= 1 ;
+1 x2 +1 x3 >= 1 ;
+1 x1 +1 x3 >= 1 ;
"""


def _busy_leaf():
    """A deliberately named leaf for the profiler to attribute."""
    total = 0
    for value in range(200):
        total += value * value
    return total


def _busy_caller():
    """Calls the leaf so the collapsed stack has depth >= 2."""
    return sum(_busy_leaf() for _ in range(20))


class TestLifecycle:
    """start/stop/context-manager semantics."""

    def test_start_stop_idempotent(self):
        prof = HotspotProfiler()
        prof.start()
        prof.start()  # second start is a no-op
        _busy_caller()
        prof.stop()
        prof.stop()  # second stop is a no-op
        assert sys.getprofile() is None
        assert prof.samples > 0

    def test_context_manager_uninstalls_hook(self):
        with HotspotProfiler() as prof:
            _busy_caller()
        assert sys.getprofile() is None
        assert prof.total_seconds() > 0.0

    def test_stop_clears_live_stack(self):
        prof = HotspotProfiler()
        prof.start()
        _busy_caller()
        prof.stop()
        assert prof._stack == []
        # restarting accumulates on top of the old totals
        before = prof.total_seconds()
        prof.start()
        _busy_caller()
        prof.stop()
        assert prof.total_seconds() >= before


class TestAttribution:
    """Self-time lands on the right (phase, function) keys."""

    def test_leaf_function_is_attributed(self):
        with HotspotProfiler() as prof:
            _busy_caller()
        functions = {func for (_, func) in prof.self_times}
        assert any(func.endswith(":_busy_leaf") for func in functions)

    def test_samples_outside_phases_land_in_main(self):
        with HotspotProfiler() as prof:
            _busy_caller()
        phases = {phase for (phase, _) in prof.self_times}
        assert phases == {MAIN_PHASE}

    def test_phase_listener_scopes_samples(self):
        prof = HotspotProfiler()
        timer = PhaseTimer(listener=prof.phase_listener)
        prof.start()
        with timer.phase("alpha"):
            _busy_caller()
        with timer.phase("beta"):
            _busy_caller()
        prof.stop()
        phases = {phase for (phase, _) in prof.self_times}
        assert "alpha" in phases
        assert "beta" in phases

    def test_phase_listener_restores_outer_phase(self):
        prof = HotspotProfiler()
        timer = PhaseTimer(listener=prof.phase_listener)
        prof.start()
        with timer.phase("outer"):
            with timer.phase("outer.inner"):
                _busy_caller()
            _busy_caller()
        _busy_caller()
        prof.stop()
        phases = {phase for (phase, _) in prof.self_times}
        assert "outer.inner" in phases
        assert "outer" in phases
        assert MAIN_PHASE in phases


class TestOutput:
    """Collapsed stacks, top tables, and serialization."""

    def _profiled(self):
        with HotspotProfiler() as prof:
            _busy_caller()
        return prof

    def test_collapsed_lines_format(self):
        lines = self._profiled().collapsed_lines()
        assert lines
        pattern = re.compile(r"^[^ ]+(;[^ ]+)* \d+$")
        for line in lines:
            assert pattern.match(line), line
        # every line opens with its phase
        assert all(line.startswith(MAIN_PHASE + ";") for line in lines)
        # deterministic ordering
        assert lines == sorted(lines, key=lambda l: l.rsplit(" ", 1)[0])

    def test_collapsed_stack_contains_caller_chain(self):
        lines = self._profiled().collapsed_lines()
        assert any(
            ":_busy_caller;" in line and ":_busy_leaf" in line
            for line in lines
        )

    def test_write_collapsed_to_file_and_stream(self, tmp_path):
        prof = self._profiled()
        path = tmp_path / "solve.folded"
        count = prof.write_collapsed(str(path))
        assert count == len(prof.collapsed_lines())
        assert len(path.read_text().splitlines()) == count
        stream = io.StringIO()
        assert prof.write_collapsed(stream) == count
        assert stream.getvalue() == path.read_text()

    def test_top_orders_by_self_time(self):
        prof = self._profiled()
        table = prof.top(5)
        for entries in table.values():
            seconds = [s for _, s in entries]
            assert seconds == sorted(seconds, reverse=True)
            assert len(entries) <= 5

    def test_format_top_renders_table(self):
        prof = self._profiled()
        text = prof.format_top(3)
        assert text.startswith("hotspots:")
        assert "samples" in text
        assert "self-seconds" in text
        assert format_hotspots(prof, 3) == text

    def test_format_hotspots_empty_profiler(self):
        prof = HotspotProfiler()
        text = format_hotspots(prof)
        assert text.startswith("hotspots: 0.000000s attributed over 0 samples")

    def test_as_dict_shape(self):
        data = self._profiled().as_dict()
        assert data["samples"] > 0
        assert data["total_seconds"] > 0
        assert MAIN_PHASE in data["phases"]
        entry = data["phases"][MAIN_PHASE][0]
        assert set(entry) == {"function", "seconds"}


class TestSolverIntegration:
    """A profiled solve names real solver functions per phase."""

    def test_solve_attributes_solver_functions(self):
        instance = parse(OPT_INSTANCE)
        prof = HotspotProfiler()
        result = solve(
            instance, SolverOptions(profile=True, hotspot=prof)
        )
        assert result.status == "optimal"
        assert sys.getprofile() is None  # solver uninstalled the hook
        functions = {func for (_, func) in prof.self_times}
        assert any(func.startswith("core.solver:") for func in functions)
        # phase scoping rode along with the profile timer
        phases = {phase for (phase, _) in prof.self_times}
        assert phases & {"propagate", "branching", "analyze", "preprocess"}

    def test_unprofiled_solve_leaves_hook_alone(self):
        instance = parse(OPT_INSTANCE)
        result = solve(instance)
        assert result.status == "optimal"
        assert sys.getprofile() is None
