"""Tests for the benchmark generators."""

import pytest

from repro.benchgen import (
    generate_covering,
    generate_planted,
    generate_ptl_mapping,
    generate_random,
    generate_routing,
    generate_scheduling,
)
from repro.core import OPTIMAL, SATISFIABLE, SolverOptions, solve


class TestRouting:
    def test_deterministic(self):
        a = generate_routing(seed=7)
        b = generate_routing(seed=7)
        assert set(a.constraints) == set(b.constraints)
        assert a.objective.costs == b.objective.costs

    def test_different_seeds_differ(self):
        a = generate_routing(seed=1)
        b = generate_routing(seed=2)
        assert (
            set(a.constraints) != set(b.constraints)
            or a.objective.costs != b.objective.costs
        )

    def test_structure(self):
        instance = generate_routing(rows=3, cols=3, nets=3, seed=0)
        stats = instance.statistics()
        assert stats["costed_variables"] > 0
        assert not instance.is_satisfaction

    def test_solvable_and_costs_positive(self):
        instance = generate_routing(rows=3, cols=3, nets=3, capacity=2, seed=1)
        result = solve(instance, SolverOptions(lower_bound="lpr"))
        assert result.status == OPTIMAL
        assert result.best_cost > 0  # some wire must be used

    def test_capacity_constrains(self):
        # capacity 1 on a small grid with several nets should make the
        # instance harder (more constraints) than unconstrained capacity
        tight = generate_routing(rows=3, cols=3, nets=4, capacity=1, seed=3)
        loose = generate_routing(rows=3, cols=3, nets=4, capacity=99, seed=3)
        assert tight.num_constraints > loose.num_constraints

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_routing(rows=1, cols=5)
        with pytest.raises(ValueError):
            generate_routing(nets=0)

    def test_congested_endpoints_cross_the_grid(self):
        instance = generate_routing(
            rows=5, cols=6, nets=4, congested=True, seed=8
        )
        # with left-to-right nets every route is at least a few edges, so
        # every route variable has positive cost
        assert all(cost > 0 for cost in instance.objective.costs.values())
        result = solve(instance, SolverOptions(lower_bound="mis"))
        assert result.solved

    def test_congested_flag_changes_instances(self):
        a = generate_routing(rows=5, cols=6, nets=4, congested=True, seed=8)
        b = generate_routing(rows=5, cols=6, nets=4, congested=False, seed=8)
        assert (
            set(a.constraints) != set(b.constraints)
            or a.objective.costs != b.objective.costs
        )


class TestCovering:
    def test_deterministic(self):
        a = generate_covering(seed=5)
        b = generate_covering(seed=5)
        assert set(a.constraints) == set(b.constraints)

    def test_unate_is_pure_covering(self):
        instance = generate_covering(binate=False, seed=2)
        assert instance.is_covering

    def test_binate_has_negative_literals(self):
        instance = generate_covering(binate=True, seed=2)
        has_negative = any(
            lit < 0 for c in instance.constraints for lit in c.literals
        )
        assert has_negative

    def test_solvable(self):
        instance = generate_covering(minterms=8, implicants=6, seed=4)
        result = solve(instance, SolverOptions(lower_bound="lpr"))
        assert result.status == OPTIMAL
        assert result.best_cost >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_covering(minterms=0)
        with pytest.raises(ValueError):
            generate_covering(density=0.0)


class TestPTL:
    def test_deterministic(self):
        a = generate_ptl_mapping(seed=9)
        b = generate_ptl_mapping(seed=9)
        assert set(a.constraints) == set(b.constraints)

    def test_always_satisfiable_all_cmos(self):
        instance = generate_ptl_mapping(nodes=6, seed=1)
        # all-CMOS with no buffers: cmos_i = 1, ptl_i = 0, buf = 0
        assignment = {var: 0 for var in instance.variables()}
        for var, name in instance.variable_names.items():
            if name.startswith("cmos"):
                assignment[var] = 1
        assert instance.check(assignment)

    def test_area_scale(self):
        instance = generate_ptl_mapping(nodes=6, seed=1)
        result = solve(instance, SolverOptions(lower_bound="lpr"))
        assert result.status == OPTIMAL
        assert result.best_cost >= 100  # area units, like 9symml's 4517

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_ptl_mapping(nodes=1)


class TestScheduling:
    def test_satisfaction_instance(self):
        instance = generate_scheduling(teams=4, seed=0)
        assert instance.is_satisfaction

    def test_round_robin_satisfiable(self):
        instance = generate_scheduling(teams=4, seed=0)
        result = solve(instance, SolverOptions(lower_bound="lpr"))
        assert result.status == SATISFIABLE
        # verify round-robin structure on the model
        assert instance.check(result.best_assignment)

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_scheduling(teams=5)
        with pytest.raises(ValueError):
            generate_scheduling(teams=2)

    def test_variable_count(self):
        instance = generate_scheduling(teams=4, tighten=False)
        # C(4,2) * 3 rounds = 18 meeting variables
        assert instance.num_variables == 18

    def test_patterns_add_home_away_structure(self):
        plain = generate_scheduling(teams=4, seed=0)
        patterned = generate_scheduling(teams=4, patterns=True, seed=0)
        assert patterned.num_variables > plain.num_variables
        assert patterned.num_constraints > plain.num_constraints
        names = set(patterned.variable_names.values())
        assert any(name.startswith("h_") for name in names)

    def test_patterns_satisfiable_and_consistent(self):
        instance = generate_scheduling(teams=6, patterns=True, seed=2)
        result = solve(instance, SolverOptions(lower_bound="plain"))
        assert result.status == SATISFIABLE
        model = result.best_assignment
        # decode: every played match has exactly one home side
        home = {}
        meets = []
        for var, name in instance.variable_names.items():
            if name.startswith("h_"):
                _, team, round_tag = name.split("_")
                home[(int(team), int(round_tag[1:]))] = model[var]
            elif name.startswith("m_") and model[var] == 1:
                _, i, j, round_tag = name.split("_")
                meets.append((int(i), int(j), int(round_tag[1:])))
        assert meets
        for i, j, t in meets:
            assert home[(i, t)] + home[(j, t)] == 1

    def test_patterns_no_three_consecutive(self):
        instance = generate_scheduling(teams=6, patterns=True, seed=3)
        result = solve(instance, SolverOptions(lower_bound="plain"))
        model = result.best_assignment
        rounds = 5
        for team in range(6):
            values = [
                model[var]
                for var, name in sorted(instance.variable_names.items())
                if name.startswith("h_%d_" % team)
            ]
            assert len(values) == rounds
            for t in range(rounds - 2):
                window = values[t : t + 3]
                assert 1 <= sum(window) <= 2


class TestRandomGenerators:
    def test_random_deterministic(self):
        a = generate_random(seed=11)
        b = generate_random(seed=11)
        assert set(a.constraints) == set(b.constraints)

    def test_random_shape(self):
        instance = generate_random(num_variables=6, num_constraints=9, seed=3)
        assert instance.num_constraints == 9
        assert instance.num_variables == 6

    def test_satisfaction_only_flag(self):
        instance = generate_random(satisfaction_only=True, seed=3)
        assert instance.is_satisfaction

    @pytest.mark.parametrize("seed", range(5))
    def test_planted_witness_valid(self, seed):
        instance, witness = generate_planted(seed=seed)
        assert instance.check(witness)

    @pytest.mark.parametrize("seed", range(3))
    def test_planted_solvable(self, seed):
        instance, witness = generate_planted(
            num_variables=6, num_constraints=8, seed=seed
        )
        result = solve(instance, SolverOptions(lower_bound="mis"))
        assert result.status == OPTIMAL
        assert result.best_cost <= instance.cost(witness)
