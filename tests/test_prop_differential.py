"""Differential harness: every propagation backend must agree.

The counter engine is the reference; watched and array are checked
against it (and each other) with three layers of evidence:

* a randomized lockstep fuzz driving all engines through the same
  decide/propagate/backtrack script and comparing implied sets,
  conflict outcomes and assignment values at every step;
* full solves on small instances from each benchmark family, which
  must reach the same status and the same optimum cost;
* a smoke run of the propbench harness, whose drive mode replays one
  seeded walk on every backend and checks lockstep propagation counts.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.benchgen import generate_planted, ptl_suite, routing_suite
from repro.core import OPTIMAL, BsoloSolver, SolverOptions
from repro.engine.interface import Conflict, make_engine
from repro.experiments.propbench import (
    family_instances,
    format_summary,
    run_propbench,
    write_report,
)
from repro.pb.constraints import Constraint

BACKENDS = ("counter", "watched", "array")


# ----------------------------------------------------------------------
# Lockstep fuzz
# ----------------------------------------------------------------------
def _random_constraint(rng: random.Random, num_vars: int) -> Constraint:
    kind = rng.randrange(3)
    arity = rng.randint(1, min(6, num_vars))
    variables = rng.sample(range(1, num_vars + 1), arity)
    lits = [v if rng.random() < 0.5 else -v for v in variables]
    if kind == 0:
        return Constraint.clause(lits)
    if kind == 1:
        return Constraint.at_least(lits, rng.randint(1, arity))
    coefs = [rng.randint(1, 7) for _ in lits]
    rhs = rng.randint(1, max(1, sum(coefs) - 1))
    return Constraint.greater_equal(list(zip(coefs, lits)), rhs)


def _run_lockstep_seed(seed: int) -> None:
    rng = random.Random(seed)
    num_vars = rng.randint(4, 14)
    num_cons = rng.randint(2, 20)
    engines = [make_engine(name, num_vars) for name in BACKENDS]
    # interleave adds with decisions to exercise add-under-assignment
    constraints = [_random_constraint(rng, num_vars) for _ in range(num_cons)]
    for step in range(rng.randint(10, 60)):
        op = rng.random()
        if constraints and op < 0.25:
            constraint = constraints.pop()
            results = [engine.add_constraint(constraint) for engine in engines]
            kinds = [isinstance(result, Conflict) for result in results]
            assert len(set(kinds)) == 1, ("add mismatch", seed, step, kinds)
            if kinds[0]:
                return  # both conflicted at add; stop this seed
        elif op < 0.65:
            free = [
                v
                for v in range(1, num_vars + 1)
                if engines[0].trail.value(v) < 0
            ]
            if not free:
                continue
            var = rng.choice(free)
            lit = var if rng.random() < 0.5 else -var
            for engine in engines:
                engine.decide(lit)
            results = [engine.propagate() for engine in engines]
            kinds = [isinstance(result, Conflict) for result in results]
            assert len(set(kinds)) == 1, (
                "conflict mismatch",
                seed,
                step,
                kinds,
            )
            if kinds[0]:
                level = engines[0].trail.decision_level
                target = rng.randint(0, max(0, level - 1))
                for engine in engines:
                    engine.backtrack(target)
            else:
                # the implied-literal fixpoint of a *non-conflicting*
                # propagate call is part of the equivalence contract
                implied = [set(engine.trail.literals) for engine in engines]
                for backend, other in zip(BACKENDS[1:], implied[1:]):
                    assert implied[0] == other, (
                        "implied mismatch",
                        seed,
                        step,
                        backend,
                        implied[0] ^ other,
                    )
        else:
            level = engines[0].trail.decision_level
            if level == 0:
                continue
            target = rng.randint(0, level - 1)
            for engine in engines:
                engine.backtrack(target)
        trails = [engine.trail for engine in engines]
        for v in range(1, num_vars + 1):
            values = [trail.value(v) for trail in trails]
            assert len(set(values)) == 1, (
                "value mismatch",
                seed,
                step,
                v,
                values,
            )


class TestLockstepFuzz:
    @pytest.mark.parametrize("block", range(4))
    def test_backends_agree_under_random_scripts(self, block):
        for seed in range(block * 20, (block + 1) * 20):
            _run_lockstep_seed(seed)


# ----------------------------------------------------------------------
# Full-solve agreement
# ----------------------------------------------------------------------
def _small_instances():
    instances = []
    instances += [("ptl", inst) for inst in ptl_suite(2, seed=11, nodes=8, extra_edges=4)]
    instances += [("grout", inst) for inst in routing_suite(1, seed=3)]
    instances += [
        (
            "random",
            generate_planted(
                num_variables=12,
                num_constraints=18,
                max_arity=6,
                max_coefficient=5,
                seed=41,
            )[0],
        )
    ]
    return instances


class TestFullSolveAgreement:
    def test_same_status_and_optimum_on_every_family(self):
        for label, instance in _small_instances():
            outcomes = {}
            for backend in BACKENDS:
                options = SolverOptions.plain(
                    propagation=backend, time_limit=30.0
                )
                result = BsoloSolver(instance, options).solve()
                outcomes[backend] = result
            statuses = {backend: r.status for backend, r in outcomes.items()}
            assert len(set(statuses.values())) == 1, (label, statuses)
            if outcomes["counter"].status == OPTIMAL:
                costs = {backend: r.best_cost for backend, r in outcomes.items()}
                assert len(set(costs.values())) == 1, (label, costs)


# ----------------------------------------------------------------------
# Propbench smoke
# ----------------------------------------------------------------------
class TestPropbenchSmoke:
    def test_quick_report_round_trip(self, tmp_path):
        report = run_propbench(
            families=("ptl",),
            count=1,
            scale=0.2,
            rounds=4,
            trials=1,
            solve=False,
        )
        drive = report["families"]["ptl"]["drive"]
        assert drive["lockstep_props_equal"]
        for backend in BACKENDS:
            assert drive[backend]["propagations"] >= 0
        summary = format_summary(report)
        assert "propagation microbenchmark" in summary
        path = write_report(report, str(tmp_path / "bench.json"))
        with open(path) as handle:
            assert json.load(handle)["benchmark"] == "propagation"

    def test_family_instances_cover_all_families(self):
        for family in ("ptl", "grout", "random"):
            instances = family_instances(family, count=1, scale=0.2)
            assert instances and instances[0].num_variables > 0
        with pytest.raises(ValueError):
            family_instances("nope")
