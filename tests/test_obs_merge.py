"""Tests for portfolio trace aggregation (repro.obs.merge).

Covers clock alignment of per-worker traces onto one timeline, worker_id
tagging, summary synthesis and override, the per-worker report and
straggler summary, the file-level merge used by ``python -m repro obs
merge``, and an end-to-end two-worker portfolio run.
"""

from __future__ import annotations

import json

from repro import parse
from repro.obs.events import WORKER_SUMMARY
from repro.obs.merge import (
    format_worker_report,
    merge_trace_files,
    merge_traces,
    straggler_summary,
    worker_spans,
    write_records,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import trace_summary
from repro.obs.trace import read_trace
from repro.portfolio.runner import PortfolioSolver

OPT_INSTANCE = """\
* #variable= 3 #constraint= 3
min: +1 x1 +2 x2 +3 x3 ;
+1 x1 +1 x2 >= 1 ;
+1 x2 +1 x3 >= 1 ;
+1 x1 +1 x3 >= 1 ;
"""


def _worker_records(epoch, status="optimal", cost=3):
    """A minimal worker trace: header, decision, result."""
    return [
        {
            "kind": "run_header",
            "t": 0.0,
            "epoch": epoch,
            "solver": "bsolo",
            "instance": "tri",
            "options": {},
        },
        {"kind": "decision", "t": 0.5, "literal": 1, "level": 1},
        {"kind": "result", "t": 1.0, "status": status, "cost": cost},
    ]


class TestMergeTraces:
    """Alignment and tagging semantics of merge_traces."""

    def test_epoch_alignment_shifts_later_worker(self):
        merged = merge_traces(
            [(0, _worker_records(100.0)), (1, _worker_records(102.5))]
        )
        by_worker = {}
        for record in merged:
            if record["kind"] == "run_header":
                by_worker[record["worker_id"]] = record["t"]
        assert by_worker[0] == 0.0
        assert by_worker[1] == 2.5

    def test_every_record_gains_worker_id_and_loses_epoch(self):
        merged = merge_traces([(0, _worker_records(50.0))])
        assert all("worker_id" in record for record in merged)
        assert all("epoch" not in record for record in merged)

    def test_records_sorted_by_aligned_time(self):
        merged = merge_traces(
            [(0, _worker_records(100.0)), (1, _worker_records(100.2))]
        )
        events = [r for r in merged if r["kind"] != WORKER_SUMMARY]
        times = [r["t"] for r in events]
        assert times == sorted(times)

    def test_summary_records_synthesized_per_worker(self):
        merged = merge_traces(
            [(0, _worker_records(100.0)), (1, _worker_records(101.0))]
        )
        tails = [r for r in merged if r["kind"] == WORKER_SUMMARY]
        assert [r["worker_id"] for r in tails] == [0, 1]
        # derived from the worker's own header/result events
        assert tails[0]["solver"] == "bsolo"
        assert tails[0]["status"] == "optimal"
        assert tails[0]["cost"] == 3
        assert tails[0]["events"] == 3

    def test_coordinator_summaries_override_derived(self):
        merged = merge_traces(
            [(0, _worker_records(100.0))],
            summaries={
                0: {
                    "label": "bsolo-mis",
                    "phase_times": {"propagate": 0.25},
                    "elapsed": 1.25,
                }
            },
        )
        tail = [r for r in merged if r["kind"] == WORKER_SUMMARY][0]
        assert tail["label"] == "bsolo-mis"  # coordinator knows the label
        assert tail["phase_times"] == {"propagate": 0.25}
        assert tail["elapsed"] == 1.25
        assert tail["status"] == "optimal"  # derived fields still fill gaps

    def test_missing_epoch_merges_at_offset_zero(self):
        records = _worker_records(100.0)
        for record in records:
            record.pop("epoch", None)
        merged = merge_traces([(0, records), (1, _worker_records(100.0))])
        headers = {
            r["worker_id"]: r["t"] for r in merged if r["kind"] == "run_header"
        }
        assert headers[0] == 0.0  # degraded gracefully, order preserved
        assert headers[1] == 0.0

    def test_empty_worker_trace_still_gets_summary(self):
        merged = merge_traces([(0, []), (1, _worker_records(10.0))])
        tails = [r for r in merged if r["kind"] == WORKER_SUMMARY]
        assert [r["worker_id"] for r in tails] == [0, 1]
        assert tails[0]["events"] == 0


class TestWorkerSpansAndReport:
    """worker_spans / straggler_summary / format_worker_report."""

    def _merged(self):
        return merge_traces(
            [
                (0, _worker_records(100.0)),
                (1, _worker_records(103.0)),
                (2, _worker_records(100.5)),
            ],
            summaries={
                0: {"phase_times": {"propagate": 0.4}},
                1: {"phase_times": {"lp": 0.9}},
            },
        )

    def test_worker_spans_cover_all_workers(self):
        spans = worker_spans(self._merged())
        assert [span["worker_id"] for span in spans] == [0, 1, 2]
        for span in spans:
            assert span["events"] == 3
            assert span["summary"] is not None
            assert span["first_t"] <= span["last_t"]

    def test_straggler_is_latest_finisher(self):
        summary = straggler_summary(self._merged())
        assert summary["workers"] == 3
        assert summary["straggler"] == 1  # started 3s late, same runtime
        assert summary["lag_seconds"] > 0
        assert summary["end_t"] >= summary["median_end_t"]

    def test_straggler_summary_empty_timeline(self):
        summary = straggler_summary([])
        assert summary == {
            "workers": 0, "straggler": None, "lag_seconds": 0.0,
        }

    def test_format_worker_report_table(self):
        text = format_worker_report(self._merged())
        lines = text.splitlines()
        assert "worker" in lines[0] and "top phases" in lines[0]
        rows = [line for line in lines if line.startswith(("w0", "w1", "w2"))]
        assert len(rows) == 3
        assert "propagate 0.400s" in text
        assert "lp 0.900s" in text
        assert lines[-1].startswith("straggler: w1")

    def test_format_worker_report_without_workers(self):
        plain = [{"kind": "decision", "t": 0.0}]
        assert "no worker events" in format_worker_report(plain)

    def test_trace_summary_reports_workers(self):
        summary = trace_summary(self._merged())
        assert summary["workers"] == [0, 1, 2]
        assert summary["status"] == "optimal"


class TestMergeTraceFiles:
    """File-level merge (the `obs merge` CLI path)."""

    def test_merge_assigns_ids_in_input_order(self, tmp_path):
        paths = []
        for index, epoch in enumerate((200.0, 201.0)):
            path = tmp_path / ("trace.w%d" % index)
            write_records(str(path), _worker_records(epoch))
            paths.append(str(path))
        out = str(tmp_path / "merged.jsonl")
        count = merge_trace_files(out, paths)
        merged = read_trace(out)
        assert count == len(merged) == 8  # 2 x (3 events + summary)
        assert sorted({r["worker_id"] for r in merged}) == [0, 1]

    def test_merged_file_is_valid_jsonl(self, tmp_path):
        path = tmp_path / "trace.w0"
        write_records(str(path), _worker_records(5.0))
        out = str(tmp_path / "merged.jsonl")
        merge_trace_files(out, [str(path)])
        with open(out) as handle:
            for line in handle:
                json.loads(line)


class TestPortfolioIntegration:
    """End-to-end: a real two-worker portfolio writes one merged trace."""

    def test_two_worker_run_produces_merged_timeline(self, tmp_path):
        instance = parse(OPT_INSTANCE)
        trace_path = str(tmp_path / "fleet.jsonl")
        registry = MetricsRegistry()
        solver = PortfolioSolver(
            instance,
            workers=2,
            time_limit=60.0,
            trace_path=trace_path,
            metrics=registry,
        )
        result = solver.solve()
        assert result.status == "optimal"
        assert result.best_cost == 3

        records = read_trace(trace_path)
        assert records, "merged trace is empty"
        workers = sorted({r["worker_id"] for r in records})
        assert workers == [0, 1]
        assert all("epoch" not in r for r in records)
        tails = [r for r in records if r["kind"] == WORKER_SUMMARY]
        assert [r["worker_id"] for r in tails] == [0, 1]
        # profiling is forced on in tracing workers: phase totals arrive
        assert any(tail["phase_times"] for tail in tails)
        report = format_worker_report(records)
        assert report.splitlines()[0].startswith("worker")

        # worker metrics snapshots reached the coordinator registry
        assert registry.get_value("solver_decisions") is not None
        assert all(
            "trace_path" in entry for entry in result.stats.workers
        )
