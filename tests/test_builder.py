"""Unit tests for the PBModel builder."""

import pytest

from repro.pb import PBModel


class TestVariables:
    def test_sequential_allocation(self):
        model = PBModel()
        assert model.new_variable() == 1
        assert model.new_variable() == 2

    def test_named_lookup(self):
        model = PBModel()
        x = model.new_variable("x")
        assert model.variable("x") == x

    def test_duplicate_name_rejected(self):
        model = PBModel()
        model.new_variable("x")
        with pytest.raises(ValueError):
            model.new_variable("x")

    def test_new_variables_bulk(self):
        model = PBModel()
        a, b = model.new_variables("a", "b")
        assert (a, b) == (1, 2)

    def test_implicit_registration(self):
        model = PBModel()
        model.add_clause([5, -7])
        assert model.num_variables == 7


class TestConstraints:
    def test_equality_splits(self):
        model = PBModel()
        x, y = model.new_variables("x", "y")
        ge, le = model.add_equal([(1, x), (1, y)], 1)
        assert ge.rhs == 1
        instance = model.build()
        assert instance.num_constraints == 2
        assert instance.check({x: 1, y: 0})
        assert not instance.check({x: 1, y: 1})
        assert not instance.check({x: 0, y: 0})

    def test_exactly(self):
        model = PBModel()
        lits = [model.new_variable() for _ in range(3)]
        model.add_exactly(lits, 1)
        instance = model.build()
        assert instance.check({1: 1, 2: 0, 3: 0})
        assert not instance.check({1: 1, 2: 1, 3: 0})

    def test_implication(self):
        model = PBModel()
        a, b = model.new_variables("a", "b")
        model.add_implication(a, b)
        instance = model.build()
        assert not instance.check({a: 1, b: 0})
        assert instance.check({a: 1, b: 1})
        assert instance.check({a: 0, b: 0})


class TestObjective:
    def test_minimize(self):
        model = PBModel()
        x, y = model.new_variables("x", "y")
        model.add_clause([x, y])
        model.minimize([(3, x), (1, y)])
        instance = model.build()
        assert instance.cost({x: 0, y: 1}) == 1

    def test_maximize_negates(self):
        model = PBModel()
        x = model.new_variable("x")
        model.add_clause([x, -x])  # tautology, keeps x registered
        model.maximize([(2, x)])
        instance = model.build()
        # maximize 2x == minimize -2x == offset -2 + 2*~x via complement var
        assert instance.cost({1: 1, 2: 0}) == -2
        assert instance.cost({1: 0, 2: 1}) == 0

    def test_negative_cost_introduces_complement(self):
        model = PBModel()
        x = model.new_variable("x")
        model.minimize([(-4, x)])
        instance = model.build()
        assert instance.num_variables == 2
        # complement channeling: exactly one of x, z true
        assert instance.check({1: 1, 2: 0})
        assert not instance.check({1: 1, 2: 1})
        # cost: x=1 -> offset -4 + 0 = -4; x=0 -> -4 + 4 = 0
        assert instance.cost({1: 1, 2: 0}) == -4
        assert instance.cost({1: 0, 2: 1}) == 0

    def test_negated_objective_literal(self):
        model = PBModel()
        x = model.new_variable("x")
        model.add_clause([x, -x])
        model.minimize([(2, -x)])
        instance = model.build()
        # 2*~x: x=0 costs 2, x=1 costs 0; the builder introduced the
        # complement variable 2 with z == ~x
        assert instance.cost({x: 0, 2: 1}) == 2
        assert instance.cost({x: 1, 2: 0}) == 0

    def test_accumulation(self):
        model = PBModel()
        x = model.new_variable("x")
        model.minimize([(1, x)])
        model.minimize([(2, x)])
        instance = model.build()
        assert instance.objective.costs == {x: 3}

    def test_zero_literal_rejected_at_build(self):
        model = PBModel()
        model._objective_terms.append((1, 0))
        with pytest.raises(ValueError):
            model.build()

    def test_complement_gets_derived_name(self):
        model = PBModel()
        model.new_variable("sel")
        model.minimize([(-1, 1)])
        instance = model.build()
        assert instance.variable_names[2] == "~sel"
