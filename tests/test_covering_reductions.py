"""Tests for the covering-matrix reductions."""

import itertools

import pytest

from repro.baselines import BruteForceSolver
from repro.core import BsoloSolver, SolverOptions, OPTIMAL, UNSATISFIABLE, solve
from repro.covering import reduce_covering
from repro.pb import Constraint, Objective, PBInstance


class TestRules:
    def test_requires_covering(self):
        instance = PBInstance([Constraint.greater_equal([(2, 1), (1, 2)], 2)])
        with pytest.raises(ValueError):
            reduce_covering(instance)

    def test_essential_unit_clause(self):
        instance = PBInstance(
            [Constraint.clause([1]), Constraint.clause([1, 2])],
            Objective({1: 3, 2: 1}),
        )
        result = reduce_covering(instance)
        assert result.forced.get(1) == 1
        assert not result.conflict

    def test_unit_propagation_chain(self):
        # (1), (~1 | 2): forcing 1 shrinks the second clause to (2)
        instance = PBInstance(
            [Constraint.clause([1]), Constraint.clause([-1, 2])],
            Objective({1: 1, 2: 1}),
        )
        result = reduce_covering(instance)
        assert result.forced == {1: 1, 2: 1}

    def test_complementary_units_conflict(self):
        instance = PBInstance([Constraint.clause([1]), Constraint.clause([-1])])
        result = reduce_covering(instance)
        assert result.conflict

    def test_subsumption(self):
        instance = PBInstance(
            [Constraint.clause([1, 2]), Constraint.clause([1, 2, 3])],
            Objective({1: 1, 2: 1, 3: 1}),
        )
        result = reduce_covering(instance)
        assert 1 in result.dropped_indices  # the wider clause
        assert 0 not in result.dropped_indices

    def test_duplicate_clauses_dropped(self):
        instance = PBInstance(
            [Constraint.clause([1, 2]), Constraint.clause([2, 1]), Constraint.clause([3, 1])],
            Objective({1: 1, 2: 1, 3: 1}),
        )
        result = reduce_covering(instance)
        assert len(result.dropped_indices) == 1

    def test_pure_negative_forced_zero(self):
        instance = PBInstance(
            [Constraint.clause([-1, 2]), Constraint.clause([2, 3])],
            Objective({1: 5, 2: 1, 3: 1}),
        )
        result = reduce_covering(instance)
        assert result.forced.get(1) == 0

    def test_pure_positive_zero_cost_forced_one(self):
        instance = PBInstance(
            [Constraint.clause([1, 2])], Objective({2: 9})
        )
        result = reduce_covering(instance)
        # var 1 occurs only positively with zero cost -> 1 (and then the
        # clause is satisfied, leaving var 2 free)
        assert result.forced.get(1) == 1

    def test_dominance_then_unit_cascade(self):
        # costed pure-positive vars are not forced by the polarity rule,
        # but column dominance eliminates the pricier one and the unit
        # rule then picks the survivor
        instance = PBInstance(
            [Constraint.clause([1, 2])], Objective({1: 3, 2: 9})
        )
        result = reduce_covering(instance)
        assert result.forced == {1: 1, 2: 0}

    def test_column_dominance(self):
        # j=1 covers rows {0,1}; k=2 covers {0}; cost 1 <= cost 2 -> drop 2
        instance = PBInstance(
            [Constraint.clause([1, 2]), Constraint.clause([1, 3])],
            Objective({1: 2, 2: 5, 3: 5}),
        )
        result = reduce_covering(instance)
        assert result.forced.get(2) == 0

    def test_dominance_cost_tie_keeps_lower_index(self):
        instance = PBInstance(
            [Constraint.clause([1, 2])], Objective({1: 3, 2: 3})
        )
        result = reduce_covering(instance)
        # identical columns with equal cost: index 2 eliminated, not 1
        assert result.forced.get(2) == 0
        assert result.forced.get(1) != 0

    def test_forced_literals_property(self):
        instance = PBInstance(
            [Constraint.clause([1]), Constraint.clause([-2, 1])],
            Objective({1: 0, 2: 4}),
        )
        result = reduce_covering(instance)
        lits = result.forced_literals
        assert 1 in lits


class TestOptimalityPreservation:
    @pytest.mark.parametrize("seed", range(12))
    def test_reduction_preserves_optimum(self, seed):
        import random

        rng = random.Random(seed * 7 + 1)
        n = rng.randint(3, 6)
        constraints = []
        for _ in range(rng.randint(2, 8)):
            size = rng.randint(1, n)
            variables = rng.sample(range(1, n + 1), size)
            constraints.append(
                Constraint.clause(
                    [v if rng.random() < 0.7 else -v for v in variables]
                )
            )
        instance = PBInstance(
            constraints,
            Objective({v: rng.randint(0, 5) for v in range(1, n + 1)}),
            num_variables=n,
        )
        expected = BruteForceSolver(instance).solve()
        result = reduce_covering(instance)
        if expected.status == UNSATISFIABLE:
            # conflict detection is allowed but not required here
            return
        if result.conflict:
            assert expected.status == UNSATISFIABLE
            return
        # exhaustive check: an optimal solution consistent with the
        # forced assignments exists
        best = None
        for bits in itertools.product((0, 1), repeat=n):
            assignment = {v: bits[v - 1] for v in range(1, n + 1)}
            if any(assignment[v] != val for v, val in result.forced.items()):
                continue
            if instance.check(assignment):
                cost = instance.cost(assignment)
                best = cost if best is None else min(best, cost)
        assert best == expected.best_cost


class TestSolverIntegration:
    def test_solver_with_reductions_matches_without(self):
        instance = PBInstance(
            [
                Constraint.clause([1, 2]),
                Constraint.clause([1, 2, 3]),
                Constraint.clause([-3, 4]),
                Constraint.clause([2, 4]),
            ],
            Objective({1: 2, 2: 3, 3: 1, 4: 2}),
        )
        with_red = solve(instance, SolverOptions(covering_reductions=True))
        without = solve(instance, SolverOptions(covering_reductions=False))
        assert with_red.status == without.status == OPTIMAL
        assert with_red.best_cost == without.best_cost
        assert instance.check(with_red.best_assignment)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_covering_instances(self, seed):
        import random

        rng = random.Random(400 + seed)
        n = rng.randint(4, 7)
        constraints = []
        for _ in range(rng.randint(3, 9)):
            size = rng.randint(1, min(4, n))
            variables = rng.sample(range(1, n + 1), size)
            constraints.append(
                Constraint.clause(
                    [v if rng.random() < 0.6 else -v for v in variables]
                )
            )
        instance = PBInstance(
            constraints,
            Objective({v: rng.randint(0, 5) for v in range(1, n + 1)}),
            num_variables=n,
        )
        expected = BruteForceSolver(instance).solve()
        result = solve(instance, SolverOptions(covering_reductions=True))
        assert result.status == expected.status
        if expected.best_cost is not None:
            assert result.best_cost == expected.best_cost
            assert instance.check(result.best_assignment)
