"""Unit tests for the watched-literal propagation backend.

Per-scheme corner cases (2-watch clauses, (b+1)-watch cardinality,
watched-sum general PB), the engine registry, and the learned-constraint
deletion audit (no stale watcher references mid-search).
"""

import pytest

from repro.engine import (
    Conflict,
    Propagator,
    UnknownEngineError,
    WatchedPropagator,
    available_engines,
    engine_descriptions,
    make_engine,
)
from repro.engine.constraint_db import KIND_CARDINALITY, KIND_CLAUSE, KIND_GENERAL
from repro.pb import Constraint


def watched_with(num_vars, constraints):
    engine = WatchedPropagator(num_vars)
    for constraint in constraints:
        assert engine.add_constraint(constraint) is None
    assert engine.propagate() is None
    return engine


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_both_backends_registered(self):
        names = available_engines()
        assert "counter" in names
        assert "watched" in names

    def test_descriptions_cover_all_engines(self):
        descriptions = engine_descriptions()
        for name in available_engines():
            assert descriptions[name]

    def test_make_engine_dispatches(self):
        assert isinstance(make_engine("counter", 4), Propagator)
        assert isinstance(make_engine("watched", 4), WatchedPropagator)

    def test_unknown_engine_raises(self):
        with pytest.raises(UnknownEngineError):
            make_engine("no-such-backend", 4)

    def test_unknown_engine_is_value_error(self):
        with pytest.raises(ValueError):
            make_engine("no-such-backend", 4)


# ----------------------------------------------------------------------
# Classification-based dispatch
# ----------------------------------------------------------------------
class TestClassifiedAttach:
    def test_kinds_route_to_their_watch_maps(self):
        engine = watched_with(
            8,
            [
                Constraint.clause([1, 2, 3]),
                Constraint.at_least([1, 2, 3, 4, 5, 6, 7, 8], 2),
                Constraint.greater_equal(
                    [(8, 1), (1, 2), (1, 3), (1, 4), (1, 5), (1, 6), (1, 7), (1, 8)],
                    2,
                ),
            ],
        )
        kinds = [stored.kind for stored in engine.database.constraints]
        assert kinds == [KIND_CLAUSE, KIND_CARDINALITY, KIND_GENERAL]
        assert engine.database.clause_watch
        assert engine.database.card_watch
        assert engine.database.pb_watch

    def test_binary_clauses_use_inline_lists(self):
        engine = watched_with(2, [Constraint.clause([1, 2])])
        (stored,) = engine.database.constraints
        assert not engine.database.clause_watch
        assert [e[0] for e in engine.database.binary_watch[1]] == [stored]
        assert [e[0] for e in engine.database.binary_watch[2]] == [stored]

    def test_dense_constraints_degrade_at_birth(self):
        # Watching b+1 of n literals with b+1 >= 0.75n leaves no room
        # for laziness: these attach straight into the counter regime.
        engine = watched_with(
            4,
            [
                Constraint.at_least([1, 2, 3, 4], 2),
                Constraint.greater_equal([(3, 1), (2, 2), (1, 3)], 3),
            ],
        )
        card, general = engine.database.constraints
        assert card.watch_all and general.watch_all
        assert not engine.database.card_watch
        assert not engine.database.pb_watch
        assert engine.database.pb_occ
        engine.database.check_invariants()

    def test_clause_watches_exactly_two(self):
        engine = watched_with(4, [Constraint.clause([1, 2, 3, 4])])
        (stored,) = engine.database.constraints
        watching = [
            lit
            for lit, entries in engine.database.clause_watch.items()
            if stored in entries
        ]
        assert len(watching) == 2

    def test_cardinality_watches_threshold_plus_one(self):
        engine = watched_with(9, [Constraint.at_least(list(range(1, 10)), 3)])
        (stored,) = engine.database.constraints
        watching = [
            lit
            for lit, entries in engine.database.card_watch.items()
            if stored in entries
        ]
        assert len(watching) == 4  # b + 1


# ----------------------------------------------------------------------
# Clause scheme
# ----------------------------------------------------------------------
class TestClauseScheme:
    def test_unit_implication_with_reason(self):
        engine = watched_with(3, [Constraint.clause([1, 2, 3])])
        engine.decide(-1)
        assert engine.propagate() is None
        engine.decide(-2)
        assert engine.propagate() is None
        assert engine.trail.literal_is_true(3)
        assert set(engine.trail.reason(3)) == {1, 2, 3}

    def test_conflict_when_all_false(self):
        engine = watched_with(2, [Constraint.clause([1, 2])])
        engine.decide(-1)
        assert engine.propagate() is None
        assert engine.trail.literal_is_true(2)
        engine.backtrack(0)
        engine.decide(-2)
        assert engine.propagate() is None
        assert engine.trail.literal_is_true(1)

    def test_top_level_implication_survives_backtrack_to_zero(self):
        # a unit clause implies at level 0; rewinding to 0 keeps it
        engine = WatchedPropagator(2)
        engine.add_constraint(Constraint.clause([1]))
        assert engine.propagate() is None
        assert engine.trail.literal_is_true(1)
        engine.decide(2)
        assert engine.propagate() is None
        engine.backtrack(0)
        assert engine.trail.literal_is_true(1)
        assert not engine.trail.is_assigned(2)

    def test_watch_replacement_keeps_clause_silent(self):
        engine = watched_with(4, [Constraint.clause([1, 2, 3, 4])])
        engine.decide(-1)
        assert engine.propagate() is None
        engine.decide(-2)
        assert engine.propagate() is None
        # two non-false literals remain: nothing implied yet
        assert not engine.trail.is_assigned(3)
        assert not engine.trail.is_assigned(4)
        engine.database.check_invariants()


# ----------------------------------------------------------------------
# Cardinality scheme
# ----------------------------------------------------------------------
class TestCardinalityScheme:
    def test_implies_all_remaining_when_tight(self):
        engine = watched_with(4, [Constraint.at_least([1, 2, 3, 4], 3)])
        engine.decide(-1)
        assert engine.propagate() is None
        assert engine.trail.literal_is_true(2)
        assert engine.trail.literal_is_true(3)
        assert engine.trail.literal_is_true(4)

    def test_conflict_when_too_many_false(self):
        engine = watched_with(4, [Constraint.at_least([1, 2, 3, 4], 3)])
        engine.assume(-1)
        engine.assume(-2)
        conflict = engine.propagate()
        assert isinstance(conflict, Conflict)

    def test_backtrack_to_zero_then_repropagate(self):
        engine = watched_with(4, [Constraint.at_least([1, 2, 3, 4], 2)])
        engine.decide(-1)
        assert engine.propagate() is None
        engine.decide(-2)
        assert engine.propagate() is None
        assert engine.trail.literal_is_true(3)
        engine.backtrack(0)
        assert not engine.trail.is_assigned(3)
        engine.decide(-3)
        assert engine.propagate() is None
        engine.decide(-4)
        assert engine.propagate() is None
        assert engine.trail.literal_is_true(1)
        assert engine.trail.literal_is_true(2)
        engine.database.check_invariants()


# ----------------------------------------------------------------------
# General PB scheme
# ----------------------------------------------------------------------
class TestGeneralPBScheme:
    def test_coefficient_tie_implies_both(self):
        # 3a + 3b + 2c >= 6: falsifying c leaves slack 2 < 3, so the
        # tied big coefficients are both implied in one scan
        engine = watched_with(
            3, [Constraint.greater_equal([(3, 1), (3, 2), (2, 3)], 6)]
        )
        engine.decide(-3)
        assert engine.propagate() is None
        assert engine.trail.literal_is_true(1)
        assert engine.trail.literal_is_true(2)

    def test_implication_reason_is_sufficient(self):
        engine = watched_with(
            4, [Constraint.greater_equal([(3, 1), (3, 2), (2, 3), (2, 4)], 6)]
        )
        engine.decide(-2)
        assert engine.propagate() is None
        assert engine.trail.literal_is_true(1)
        # reason is in clause form: the implied literal plus the false
        # constraint literals (in their constraint polarity)
        reason = engine.trail.reason(1)
        assert 1 in reason and 2 in reason

    def test_necessary_assignment_implied_at_top_level(self):
        # total - coef(x1) = 6 < rhs: x1 is forced with an unconditional
        # (unit) reason before any decision is made
        engine = WatchedPropagator(4)
        engine.add_constraint(
            Constraint.greater_equal([(4, 1), (3, 2), (2, 3), (1, 4)], 7)
        )
        assert engine.propagate() is None
        assert engine.trail.literal_is_true(1)
        assert engine.trail.level(1) == 0
        assert engine.trail.reason(1) == (1,)

    def test_degraded_constraint_detects_conflict(self):
        engine = watched_with(
            3, [Constraint.greater_equal([(2, 1), (2, 2), (2, 3)], 4)]
        )
        engine.assume(-1)
        engine.assume(-2)
        conflict = engine.propagate()
        assert isinstance(conflict, Conflict)
        assert set(conflict.literals) <= {1, 2}

    def test_backtrack_to_zero_restores_watched_sums(self):
        engine = watched_with(
            4, [Constraint.greater_equal([(3, 1), (3, 2), (2, 3), (2, 4)], 6)]
        )
        engine.decide(-1)
        assert engine.propagate() is None  # degrades and implies
        assert engine.trail.literal_is_true(2)
        engine.backtrack(0)
        assert not engine.trail.is_assigned(1)
        assert not engine.trail.is_assigned(2)
        engine.database.check_invariants()
        # the constraint still propagates correctly after the rewind
        engine.decide(-2)
        assert engine.propagate() is None
        assert engine.trail.literal_is_true(1)

    def test_degradation_is_sticky_and_exact(self):
        # unequal coefficients: all-equal ones would classify as
        # cardinality and bypass the general PB scheme entirely
        engine = watched_with(
            4, [Constraint.greater_equal([(3, 1), (3, 2), (2, 3), (2, 4)], 6)]
        )
        engine.decide(-1)
        assert engine.propagate() is None
        (stored,) = engine.database.constraints
        assert stored.watch_all
        assert engine.database.pb_occ
        engine.backtrack(0)
        # sticky: the constraint stays in the counter regime, with wsum
        # tracking the exact non-false supply through undo events
        assert stored.watch_all
        assert stored.wsum == 10
        engine.database.check_invariants()

    def test_violated_at_add_returns_conflict(self):
        engine = WatchedPropagator(2)
        engine.assume(-1)
        engine.assume(-2)
        conflict = engine.add_constraint(
            Constraint.greater_equal([(2, 1), (2, 2)], 2)
        )
        assert isinstance(conflict, Conflict)

    def test_tautology_is_inert(self):
        engine = WatchedPropagator(2)
        assert engine.add_constraint(Constraint.greater_equal([(2, 1)], 0)) is None
        assert engine.propagate() is None
        assert not engine.trail.is_assigned(1)


# ----------------------------------------------------------------------
# Learned-constraint deletion (stale-reference audit)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["counter", "watched"])
class TestReduceLearnedMidSearch:
    def test_deleted_mid_search_never_wakes_again(self, backend):
        engine = make_engine(backend, 4)
        engine.add_constraint(Constraint.clause([1, 2, 3, 4]))
        assert engine.propagate() is None
        engine.decide(-1)
        assert engine.propagate() is None
        # learn two clauses mid-search, then forget one of them
        engine.add_constraint(Constraint.clause([2, 3]), learned=True)
        engine.add_constraint(Constraint.clause([1, 2]), learned=True)
        assert engine.propagate() is None
        removed = engine.reduce_learned(
            lambda stored: stored.constraint.literals == (2, 3)
        )
        assert removed == 1
        survivors = [s.constraint.literals for s in engine.database.constraints]
        assert (1, 2) not in survivors
        # back at the root, falsify the deleted clause's literals: a live
        # (1,2) would imply 2 under -1 and then conflict under -2, so the
        # silent propagates are the staleness proof
        engine.backtrack(0)
        engine.decide(-1)
        assert engine.propagate() is None
        assert not engine.trail.is_assigned(2)  # deleted (1,2) stays silent
        engine.decide(-2)
        assert engine.propagate() is None  # a live (1,2) would conflict here
        assert engine.trail.literal_is_true(3)  # from the surviving (2,3)
        engine.backtrack(0)
        assert engine.propagate() is None
        live = set(map(id, engine.database.constraints))
        if backend == "watched":
            engine.database.check_invariants()
            for watch_map in (
                engine.database.clause_watch,
                engine.database.card_watch,
                engine.database.pb_watch,
            ):
                for entries in watch_map.values():
                    for entry in entries:
                        stored = entry[0] if isinstance(entry, tuple) else entry
                        assert id(stored) in live

    def test_deleted_general_pb_mid_search(self, backend):
        engine = make_engine(backend, 3)
        engine.add_constraint(Constraint.clause([1, 2, 3]))
        assert engine.propagate() is None
        engine.decide(3)
        assert engine.propagate() is None
        engine.add_constraint(
            Constraint.greater_equal([(2, 1), (2, 2), (1, -3)], 2), learned=True
        )
        assert engine.propagate() is None
        assert engine.reduce_learned(lambda stored: False) == 1
        assert engine.database.num_learned() == 0
        # re-propagating after deletion must not touch the dead constraint
        engine.decide(-1)
        assert engine.propagate() is None
        assert not engine.trail.is_assigned(2)
        engine.backtrack(0)
        assert engine.propagate() is None

    def test_pending_queue_purged_on_delete(self, backend):
        engine = make_engine(backend, 3)
        engine.decide(1)
        # added under assignment: sits in the pending queue unscanned
        engine.add_constraint(Constraint.clause([-1, 2, 3]), learned=True)
        assert engine.reduce_learned(lambda stored: False) == 1
        assert engine.propagate() is None
        assert not engine.trail.is_assigned(2)
        assert not engine.trail.is_assigned(3)
