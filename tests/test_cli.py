"""Tests for the bsolo command-line interface."""

import json

import pytest

from repro import cli
from repro.obs import read_trace
from repro.pb import opb, parse


OPT_INSTANCE = """\
min: +3 x1 +2 x2 +2 x3 ;
+1 x1 +1 x2 >= 1 ;
+1 x2 +1 x3 >= 1 ;
+1 x1 +1 x3 >= 1 ;
"""

SAT_INSTANCE = "+1 x1 +1 x2 >= 1 ;\n"

UNSAT_INSTANCE = """\
+1 x1 >= 1 ;
+1 ~x1 >= 1 ;
"""


@pytest.fixture
def opt_file(tmp_path):
    path = tmp_path / "opt.opb"
    path.write_text(OPT_INSTANCE)
    return str(path)


class TestMain:
    def test_optimization(self, opt_file, capsys):
        exit_code = cli.main([opt_file])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "s OPTIMAL" in out
        assert "o 4" in out

    def test_solver_selection(self, opt_file, capsys):
        exit_code = cli.main([opt_file, "--solver", "galena"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "o 4" in out

    def test_stats_flag(self, opt_file, capsys):
        cli.main([opt_file, "--stats"])
        out = capsys.readouterr().out
        assert "c decisions" in out

    def test_model_flag(self, opt_file, capsys):
        cli.main([opt_file, "--model"])
        out = capsys.readouterr().out
        assert "v " in out
        model_line = [l for l in out.splitlines() if l.startswith("v ")][0]
        # model mentions all three variables with polarity
        assert "x1" in model_line and "x3" in model_line

    def test_satisfaction(self, tmp_path, capsys):
        path = tmp_path / "sat.opb"
        path.write_text(SAT_INSTANCE)
        exit_code = cli.main([str(path)])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "s SATISFIABLE" in out

    def test_unsat(self, tmp_path, capsys):
        path = tmp_path / "unsat.opb"
        path.write_text(UNSAT_INSTANCE)
        exit_code = cli.main([str(path)])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "s UNSATISFIABLE" in out

    def test_bad_solver_rejected(self, opt_file):
        with pytest.raises(SystemExit):
            cli.main([opt_file, "--solver", "z3"])

    def test_time_limit_accepted(self, opt_file, capsys):
        exit_code = cli.main([opt_file, "--time-limit", "30"])
        assert exit_code == 0

    def test_help_lists_registered_solvers(self, capsys):
        with pytest.raises(SystemExit):
            cli.main(["--help"])
        out = capsys.readouterr().out
        for name in ("bsolo-lpr", "linear-search", "milp", "portfolio"):
            assert name in out


class TestPortfolioFlag:
    def test_portfolio_run(self, opt_file, tmp_path, capsys):
        json_path = str(tmp_path / "stats.json")
        exit_code = cli.main(
            [opt_file, "--portfolio", "2", "--time-limit", "60",
             "--stats-json", json_path]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "s OPTIMAL" in out
        assert "o 4" in out
        assert "c portfolio workers=2" in out
        with open(json_path) as handle:
            payload = json.load(handle)
        assert payload["solver"] == "portfolio-2"
        assert payload["stats"]["portfolio"]["failures"] == 0

    def test_portfolio_rejects_bad_count(self, opt_file):
        with pytest.raises(SystemExit):
            cli.main([opt_file, "--portfolio", "0"])

    def test_portfolio_accepts_trace_and_merges(self, opt_file, tmp_path):
        trace_path = str(tmp_path / "t.jsonl")
        code = cli.main(
            [opt_file, "--portfolio", "2", "--trace", trace_path]
        )
        assert code == 0
        records = read_trace(trace_path)
        assert sorted({r["worker_id"] for r in records}) == [0, 1]

    def test_portfolio_rejects_hotspot(self, opt_file, tmp_path):
        with pytest.raises(SystemExit):
            cli.main(
                [opt_file, "--portfolio", "2",
                 "--hotspot", str(tmp_path / "h.folded")]
            )


class TestObservabilityFlags:
    def test_stats_floats_have_six_decimals(self, opt_file, capsys):
        cli.main([opt_file, "--stats"])
        out = capsys.readouterr().out
        elapsed_lines = [
            l for l in out.splitlines() if l.startswith("c elapsed ")
        ]
        assert len(elapsed_lines) == 1
        value = elapsed_lines[0].split()[-1]
        assert "." in value and len(value.split(".")[1]) == 6

    def test_trace_flag_writes_valid_jsonl(self, opt_file, tmp_path, capsys):
        trace_path = str(tmp_path / "run.jsonl")
        exit_code = cli.main([opt_file, "--trace", trace_path])
        assert exit_code == 0
        records = read_trace(trace_path)  # every line parses as JSON
        assert records[0]["kind"] == "run_header"
        assert records[0]["instance"] == opt_file
        assert records[-1]["kind"] == "result"
        assert records[-1]["status"] == "optimal"
        times = [r["t"] for r in records]
        assert times == sorted(times)

    def test_profile_flag_prints_table(self, opt_file, capsys):
        cli.main([opt_file, "--profile"])
        out = capsys.readouterr().out
        lines = out.splitlines()
        assert any(l.startswith("c phase") for l in lines)
        assert any(l.startswith("c total") for l in lines)
        total_line = [l for l in lines if l.startswith("c total")][0]
        assert "100.0%" in total_line

    def test_stats_json_flag(self, opt_file, tmp_path, capsys):
        json_path = str(tmp_path / "stats.json")
        exit_code = cli.main([opt_file, "--stats-json", json_path])
        assert exit_code == 0
        with open(json_path) as handle:
            payload = json.load(handle)
        assert payload["status"] == "optimal"
        assert payload["cost"] == 4
        assert payload["solver"] == "bsolo-lpr"
        assert payload["instance"] == opt_file
        assert payload["stats"]["decisions"] >= 0
        assert payload["stats"]["lower_bound_calls"] >= 1

    def test_progress_flag_accepted(self, opt_file, capsys):
        exit_code = cli.main(
            [opt_file, "--progress", "--progress-interval", "1"]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        progress_lines = [
            l for l in out.splitlines() if l.startswith("c progress ")
        ]
        assert progress_lines, "interval=1 should print at least one heartbeat"
        assert "conflicts=" in progress_lines[0]

    def test_all_flags_together(self, opt_file, tmp_path, capsys):
        trace_path = str(tmp_path / "run.jsonl")
        json_path = str(tmp_path / "stats.json")
        exit_code = cli.main(
            [
                opt_file,
                "--profile",
                "--trace",
                trace_path,
                "--stats-json",
                json_path,
                "--stats",
            ]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "s OPTIMAL" in out
        records = read_trace(trace_path)
        assert records[0]["kind"] == "run_header"
        assert records[-1]["kind"] == "result"
        with open(json_path) as handle:
            payload = json.load(handle)
        # profiling was on, so phase times land in the JSON stats too
        assert payload["stats"]["phase_times"]
        assert any("c phase_times." in l for l in out.splitlines())

    def test_trace_works_for_pbs_baseline(self, opt_file, tmp_path, capsys):
        trace_path = str(tmp_path / "pbs.jsonl")
        exit_code = cli.main(
            [opt_file, "--solver", "pbs", "--trace", trace_path]
        )
        assert exit_code == 0
        records = read_trace(trace_path)
        assert records[0]["kind"] == "run_header"
        assert records[0]["solver"] == "pbs-like"
        assert records[-1]["kind"] == "result"


class TestMetricsAndHotspotFlags:
    def test_metrics_flag_writes_exposition_file(self, opt_file, tmp_path):
        metrics_path = str(tmp_path / "metrics.txt")
        exit_code = cli.main([opt_file, "--metrics", metrics_path])
        assert exit_code == 0
        text = open(metrics_path).read()
        assert "# TYPE solver_decisions counter" in text
        assert "engine_propagations" in text

    def test_metrics_dash_prints_c_prefixed(self, opt_file, capsys):
        exit_code = cli.main([opt_file, "--metrics", "-"])
        assert exit_code == 0
        out = capsys.readouterr().out
        metric_lines = [
            l for l in out.splitlines() if l.startswith("c solver_decisions")
        ]
        assert metric_lines

    def test_hotspot_flag_writes_collapsed_stacks(
        self, opt_file, tmp_path, capsys
    ):
        folded = str(tmp_path / "solve.folded")
        exit_code = cli.main([opt_file, "--hotspot", folded])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert any(l.startswith("c hotspots:") for l in out.splitlines())
        lines = open(folded).read().splitlines()
        assert lines
        assert all(line.rsplit(" ", 1)[1].isdigit() for line in lines)


class TestObsSubcommand:
    def _write_worker_traces(self, tmp_path, count=2):
        from repro.obs.merge import write_records

        paths = []
        for worker_id in range(count):
            records = [
                {
                    "kind": "run_header", "t": 0.0,
                    "epoch": 100.0 + worker_id, "solver": "bsolo",
                    "instance": "w%d" % worker_id, "options": {},
                },
                {
                    "kind": "result", "t": 0.5,
                    "status": "optimal", "cost": 4,
                },
            ]
            path = str(tmp_path / ("t.jsonl.w%d" % worker_id))
            write_records(path, records)
            paths.append(path)
        return paths

    def test_obs_merge_combines_worker_traces(self, tmp_path, capsys):
        paths = self._write_worker_traces(tmp_path)
        out_path = str(tmp_path / "merged.jsonl")
        exit_code = cli.obs_main(["merge", out_path] + paths)
        assert exit_code == 0
        assert "merged" in capsys.readouterr().out
        records = read_trace(out_path)
        assert sorted({r["worker_id"] for r in records}) == [0, 1]

    def test_obs_report_renders_worker_table(self, tmp_path, capsys):
        paths = self._write_worker_traces(tmp_path)
        out_path = str(tmp_path / "merged.jsonl")
        cli.obs_main(["merge", out_path] + paths)
        capsys.readouterr()
        exit_code = cli.obs_main(["report", out_path])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("worker")
        assert "straggler" in out

    def test_obs_report_single_trace_summary(self, opt_file, tmp_path, capsys):
        trace_path = str(tmp_path / "run.jsonl")
        cli.main([opt_file, "--trace", trace_path])
        capsys.readouterr()
        exit_code = cli.obs_main(["report", trace_path])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "status: optimal" in out
        assert "gap" in out
