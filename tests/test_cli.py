"""Tests for the bsolo command-line interface."""

import pytest

from repro import cli
from repro.pb import opb, parse


OPT_INSTANCE = """\
min: +3 x1 +2 x2 +2 x3 ;
+1 x1 +1 x2 >= 1 ;
+1 x2 +1 x3 >= 1 ;
+1 x1 +1 x3 >= 1 ;
"""

SAT_INSTANCE = "+1 x1 +1 x2 >= 1 ;\n"

UNSAT_INSTANCE = """\
+1 x1 >= 1 ;
+1 ~x1 >= 1 ;
"""


@pytest.fixture
def opt_file(tmp_path):
    path = tmp_path / "opt.opb"
    path.write_text(OPT_INSTANCE)
    return str(path)


class TestMain:
    def test_optimization(self, opt_file, capsys):
        exit_code = cli.main([opt_file])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "s OPTIMAL" in out
        assert "o 4" in out

    def test_solver_selection(self, opt_file, capsys):
        exit_code = cli.main([opt_file, "--solver", "galena"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "o 4" in out

    def test_stats_flag(self, opt_file, capsys):
        cli.main([opt_file, "--stats"])
        out = capsys.readouterr().out
        assert "c decisions" in out

    def test_model_flag(self, opt_file, capsys):
        cli.main([opt_file, "--model"])
        out = capsys.readouterr().out
        assert "v " in out
        model_line = [l for l in out.splitlines() if l.startswith("v ")][0]
        # model mentions all three variables with polarity
        assert "x1" in model_line and "x3" in model_line

    def test_satisfaction(self, tmp_path, capsys):
        path = tmp_path / "sat.opb"
        path.write_text(SAT_INSTANCE)
        exit_code = cli.main([str(path)])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "s SATISFIABLE" in out

    def test_unsat(self, tmp_path, capsys):
        path = tmp_path / "unsat.opb"
        path.write_text(UNSAT_INSTANCE)
        exit_code = cli.main([str(path)])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "s UNSATISFIABLE" in out

    def test_bad_solver_rejected(self, opt_file):
        with pytest.raises(SystemExit):
            cli.main([opt_file, "--solver", "z3"])

    def test_time_limit_accepted(self, opt_file, capsys):
        exit_code = cli.main([opt_file, "--time-limit", "30"])
        assert exit_code == 0
