"""Tests for the post-paper extensions: multiplier reuse and probing
implications."""

from repro.core import BsoloSolver, SolverOptions, OPTIMAL, probe_necessary_assignments
from repro.engine import Propagator
from repro.lagrangian import LagrangianBound, SubgradientOptions
from repro.pb import Constraint, Objective, PBInstance


def covering_instance():
    return PBInstance(
        [
            Constraint.clause([1, 2]),
            Constraint.clause([2, 3]),
            Constraint.clause([1, 3]),
        ],
        Objective({1: 3, 2: 2, 3: 2}),
    )


class TestMultiplierReuse:
    def test_memory_populated(self):
        lgr = LagrangianBound(covering_instance())
        lgr.compute({})
        assert lgr._mu_memory  # some multipliers active

    def test_second_call_at_least_as_good_quickly(self):
        instance = covering_instance()
        warm = LagrangianBound(instance, SubgradientOptions(max_iterations=100))
        first = warm.compute({}).value
        # very short follow-up budget still reaches the same bound thanks
        # to the warm start
        warm._options.max_iterations = 5
        second = warm.compute({}).value
        assert second >= first - 1

    def test_reuse_disabled(self):
        lgr = LagrangianBound(covering_instance(), reuse_multipliers=False)
        lgr.compute({})
        assert lgr._mu_memory == {}

    def test_explicit_warm_start_wins_over_memory(self):
        instance = covering_instance()
        lgr = LagrangianBound(instance)
        bound = lgr.compute({})
        explicit = {row: 99.0 for row in bound.duals_by_row}
        # must not crash and must remain a valid (sound) bound
        again = lgr.compute({}, warm_start=explicit)
        assert again.value <= 4  # true optimum


class TestProbingImplications:
    def propagator(self):
        # x1 -> x2 via a non-binary chain: (~1 | 2 | 3), (~1 | 2 | ~3)
        prop = Propagator(3)
        prop.add_constraint(Constraint.clause([-1, 2, 3]))
        prop.add_constraint(Constraint.clause([-1, 2, -3]))
        assert prop.propagate() is None
        return prop

    def test_disabled_by_default(self):
        result = probe_necessary_assignments(self.propagator())
        assert result.implications == []

    def test_deep_chain_yields_binary(self):
        # (~1|2), (~2|3): probing 1 implies 3 through a chain; but both
        # reasons are binary so nothing new is learned.  Use a ternary
        # reason instead: (~1|2|3) & (~1|2|~3) -- probing 1 implies
        # nothing directly (two clauses, no unit)... use PB constraint:
        # 2*~1 + 1*2 + 1*4 >= 2 -- probing 1 forces nothing; simpler:
        prop = Propagator(3)
        prop.add_constraint(Constraint.greater_equal([(2, -1), (1, 2), (1, 3)], 2))
        result = probe_necessary_assignments(
            prop, learn_implications=True, max_implications=10
        )
        # probing x1=1 forces x2 and x3 (reason size 2 each: (lit, 1));
        # reasons of size 2 are skipped, so implications may be empty --
        # the point is it must not crash and must stay at level 0
        assert prop.trail.decision_level == 0

    def test_ternary_reason_collected(self):
        prop = Propagator(4)
        # clause (~1 | ~2 | 3): probing 1 after asserting 2 at root gives
        # reason (3, -1, -2) of length 3 -> implication (~1 | 3) learned
        prop.add_constraint(Constraint.clause([-1, -2, 3]))
        prop.assume(2)
        assert prop.propagate() is None
        result = probe_necessary_assignments(
            prop, learn_implications=True, max_implications=10
        )
        assert Constraint.clause([-1, 3]) in result.implications

    def test_cap_respected(self):
        prop = Propagator(4)
        prop.add_constraint(Constraint.clause([-1, -2, 3]))
        prop.add_constraint(Constraint.clause([-1, -2, 4]))
        prop.assume(2)
        assert prop.propagate() is None
        result = probe_necessary_assignments(
            prop, learn_implications=True, max_implications=1
        )
        assert len(result.implications) <= 1

    def test_solver_option(self):
        options = SolverOptions(probing_implications=16)
        result = BsoloSolver(covering_instance(), options).solve()
        assert result.status == OPTIMAL and result.best_cost == 4

    def test_solver_option_correctness_random(self):
        import random

        from repro.baselines import BruteForceSolver

        rng = random.Random(5)
        for _ in range(5):
            n = rng.randint(4, 6)
            constraints = []
            for _ in range(rng.randint(3, 8)):
                variables = rng.sample(range(1, n + 1), rng.randint(2, n))
                constraints.append(
                    Constraint.clause(
                        [v if rng.random() < 0.5 else -v for v in variables]
                    )
                )
            instance = PBInstance(
                constraints,
                Objective({v: rng.randint(0, 4) for v in range(1, n + 1)}),
                num_variables=n,
            )
            expected = BruteForceSolver(instance).solve()
            result = BsoloSolver(
                instance, SolverOptions(probing_implications=50)
            ).solve()
            assert result.status == expected.status
            if expected.best_cost is not None:
                assert result.best_cost == expected.best_cost
