"""Unit tests for branching heuristics (Section 5)."""

from repro.core import Brancher
from repro.engine import Trail, VSIDSActivity


def make(n, lp_guided=True):
    activity = VSIDSActivity(n)
    return Brancher(activity, lp_guided=lp_guided), activity, Trail(n)


class TestLPGuided:
    def test_most_fractional_selected(self):
        brancher, _, trail = make(3)
        lp = {1: 0.9, 2: 0.55, 3: 0.1}
        assert abs(brancher.pick(trail, lp)) == 2

    def test_phase_rounds_lp_value(self):
        brancher, _, trail = make(2)
        assert brancher.pick(trail, {1: 0.6, 2: 0.0}) == 1
        assert brancher.pick(trail, {1: 0.4, 2: 0.0}) == -1

    def test_integer_lp_values_skipped(self):
        brancher, activity, trail = make(3)
        activity.bump(3)
        lp = {1: 1.0, 2: 0.0}
        # no fractional candidate: falls back to VSIDS (var 3), phase 0
        assert brancher.pick(trail, lp) == -3

    def test_vsids_breaks_half_ties(self):
        brancher, activity, trail = make(3)
        activity.bump(2)
        lp = {1: 0.5, 2: 0.5, 3: 0.5}
        assert abs(brancher.pick(trail, lp)) == 2

    def test_assigned_variables_ignored(self):
        brancher, _, trail = make(3)
        trail.decide(2)
        lp = {1: 0.8, 2: 0.5, 3: 0.0}
        assert abs(brancher.pick(trail, lp)) == 1

    def test_stale_lp_values_partial(self):
        brancher, _, trail = make(3)
        # LP knows nothing about var 3; still picks a fractional var
        assert abs(brancher.pick(trail, {1: 0.45})) == 1


class TestFallback:
    def test_no_lp_uses_vsids(self):
        brancher, activity, trail = make(3, lp_guided=False)
        activity.bump(3)
        assert brancher.pick(trail, {1: 0.5}) == -3

    def test_empty_lp_values(self):
        brancher, activity, trail = make(2)
        activity.bump(1)
        assert brancher.pick(trail, {}) == -1

    def test_all_assigned_returns_none(self):
        brancher, _, trail = make(2)
        trail.decide(1)
        trail.decide(2)
        assert brancher.pick(trail, {}) is None

    def test_default_phase_is_zero(self):
        brancher, _, trail = make(1, lp_guided=False)
        assert brancher.pick(trail, None) == -1
