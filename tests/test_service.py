"""End-to-end tests for the solve service: HTTP, SSE, cache, cancel."""

import io
import json
import os
import re
import threading
import time

import pytest

from repro import api
from repro.core.options import SolverOptions
from repro.pb.opb import parse
from repro.service import (
    BackgroundServer,
    ServiceClient,
    ServiceConfig,
    ServiceError,
)
from repro.service.protocol import (
    ERROR_CODES,
    JOB_STATES,
    ProtocolError,
    SSE_EVENT_TYPES,
    SubmitRequest,
    format_sse,
    parse_sse,
)

EASY = (
    "min: +1 x1 +2 x2 +3 x3;\n"
    "+1 x1 +1 x2 +1 x3 >= 2;\n"
    "+1 x1 +1 x2 >= 1;\n"
)

#: Same instance as EASY under the renaming 1->5, 2->7, 3->2 (with
#: unused indices declared), exercising the canonical cache.
EASY_RENAMED = (
    "min: +2 x7 +1 x5 +3 x2;\n"
    "+1 x5 +1 x7 +1 x2 >= 2;\n"
    "+1 x5 +1 x7 >= 1;\n"
)


def slow_instance(n=20):
    """A brute-force-hostile instance (2^n assignments)."""
    lines = ["min: " + " ".join("+%d x%d" % ((i % 7) + 1, i)
                                for i in range(1, n + 1)) + ";"]
    for i in range(1, n + 1):
        lines.append(
            "+1 x%d +1 x%d +1 x%d >= 2;"
            % (i, (i % n) + 1, ((i + 5) % n) + 1)
        )
    return "\n".join(lines) + "\n"


@pytest.fixture(scope="module")
def server():
    config = ServiceConfig(
        port=0, workers=2, queue_depth=32, cache_size=64,
        default_deadline=60.0, grace=3.0,
    )
    with BackgroundServer(config) as running:
        yield running


@pytest.fixture(scope="module")
def client(server):
    return ServiceClient(port=server.port, timeout=120.0)


class TestProtocolUnit:
    def test_submit_request_rejects_garbage(self):
        for body, code in [
            (None, "bad_request"),
            ([], "bad_request"),
            ({}, "bad_request"),
            ({"instance": "not opb"}, "bad_request"),
            ({"instance": EASY, "bogus": 1}, "bad_request"),
            ({"instance": EASY, "solver": "no-such"}, "unknown_solver"),
            ({"instance": EASY, "options": {"profile": True}}, "bad_request"),
            ({"instance": EASY, "timeout": -1}, "bad_request"),
            ({"instance": EASY, "proof": "yes"}, "bad_request"),
            (
                {"instance": EASY, "solver": "linear-search", "proof": True},
                "unsupported",
            ),
        ]:
            with pytest.raises(ProtocolError) as err:
                SubmitRequest.from_json(body)
            assert err.value.code == code, body

    def test_submit_request_resolves_solver_alias(self):
        request = SubmitRequest.from_json(
            {"instance": EASY, "solver": "pbs"}
        )
        assert request.solver == api.canonical_name("pbs")

    def test_sse_roundtrip(self):
        frame = format_sse("progress", {"conflicts": 3}).decode()
        events = list(parse_sse(frame.splitlines()))
        assert events == [("progress", {"conflicts": 3})]

    def test_format_sse_rejects_unknown_event(self):
        with pytest.raises(ValueError):
            format_sse("no-such-event", {})


class TestEndToEnd:
    def test_concurrent_batch_matches_direct_solve(self, client):
        texts = [EASY, slow_instance(8),
                 "min: +1 x1;\n+1 x1 +1 x2 >= 1;\n"]
        direct = [
            api.solve(parse(io.StringIO(t)), "bsolo-lpr", SolverOptions())
            for t in texts
        ]
        jobs = [client.submit(t, solver="bsolo-lpr", cache=False)
                for t in texts]
        finals = [client.wait(j["id"], timeout=60) for j in jobs]
        for reference, final in zip(direct, finals):
            assert final["state"] == "done"
            assert final["result"]["status"] == reference.status
            assert final["result"]["cost"] == reference.best_cost

    def test_renamed_duplicate_hits_cache_with_translated_model(
        self, client
    ):
        first = client.wait(
            client.submit(EASY, solver="bsolo-lpr")["id"], timeout=60
        )
        assert first["state"] == "done"
        duplicate = client.submit(EASY_RENAMED, solver="bsolo-lpr")
        assert duplicate["state"] == "done"
        result = duplicate["result"]
        assert result["cached"] is True
        assert result["cost"] == first["result"]["cost"]
        # the cached model must satisfy the *renamed* instance
        instance = parse(io.StringIO(EASY_RENAMED))
        model = {int(var): val for var, val in result["model"].items()}
        full = {v: model.get(v, 0) for v in range(1, 8)}
        for constraint in instance.constraints:
            assert constraint.is_satisfied_by(full)

    def test_differing_options_bypass_cache_entry(self, client):
        client.wait(
            client.submit(EASY, solver="bsolo-lpr")["id"], timeout=60
        )
        other = client.submit(
            EASY, solver="bsolo-lpr", options={"lower_bound": "mis"}
        )
        assert other["state"] == "queued"  # miss: different signature
        final = client.wait(other["id"], timeout=60)
        assert final["result"]["cached"] is False

    def test_sse_stream_replays_lifecycle(self, client):
        job = client.submit(EASY, solver="bsolo-lpr", cache=False)
        events = list(client.events(job["id"]))
        names = [name for name, _ in events]
        assert names[0] == "queued"
        assert "started" in names
        assert names[-1] == "result"
        for name, _data in events:
            assert name in SSE_EVENT_TYPES
        result = dict(events)["result"]
        assert result["status"] == "optimal"

    def test_client_cancel_terminates_running_job(self, client):
        job = client.submit(
            slow_instance(20), solver="brute-force", timeout=60, cache=False
        )
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if client.get(job["id"])["state"] == "running":
                break
            time.sleep(0.02)
        client.cancel(job["id"])
        final = client.wait(job["id"], timeout=30)
        assert final["state"] == "cancelled"
        assert final["reason"] == "client"
        names = [name for name, _ in client.events(job["id"])]
        assert names[-1] == "cancelled"

    def test_cancel_queued_job_never_runs(self, client):
        # saturate both workers, then cancel a queued job
        blockers = [
            client.submit(slow_instance(20), solver="brute-force",
                          timeout=30, cache=False)
            for _ in range(2)
        ]
        queued = client.submit(EASY, solver="bsolo-lpr", cache=False)
        cancelled = client.cancel(queued["id"])
        assert cancelled["state"] == "cancelled"
        for blocker in blockers:
            client.cancel(blocker["id"])
            client.wait(blocker["id"], timeout=30)
        final = client.get(queued["id"])
        assert final["state"] == "cancelled"
        assert "started" not in [n for n, _ in client.events(queued["id"])]

    def test_deadline_bounds_the_solve(self, client):
        job = client.submit(
            slow_instance(20), solver="brute-force", timeout=1.0, cache=False
        )
        start = time.monotonic()
        final = client.wait(job["id"], timeout=30)
        elapsed = time.monotonic() - start
        # deadline flows into the solver's time_limit: the worker stops
        # itself and reports an inconclusive result well before the
        # watchdog's grace window would fire
        assert final["state"] in ("done", "cancelled")
        if final["state"] == "done":
            assert final["result"]["status"] == "unknown"
        else:
            assert final["reason"] == "deadline"
        assert elapsed < 20

    def test_proof_job_returns_checkable_certificate(self, client):
        job = client.submit(EASY, solver="bsolo-lpr", proof=True)
        final = client.wait(job["id"], timeout=60)
        assert final["state"] == "done"
        proof = final["result"].get("proof")
        assert proof
        from repro.certify import ProofChecker

        outcome = ProofChecker(parse(io.StringIO(EASY))).check_text(proof)
        assert outcome.status == "optimal"
        assert outcome.cost == final["result"]["cost"]

    def test_proof_jobs_bypass_cache(self, client):
        client.wait(
            client.submit(EASY, solver="bsolo-lpr")["id"], timeout=60
        )
        job = client.submit(EASY, solver="bsolo-lpr", proof=True)
        assert job["state"] != "done" or not job["result"].get("cached")
        final = client.wait(job["id"], timeout=60)
        assert final["result"]["cached"] is False
        assert "proof" in final["result"]


class TestHttpSurface:
    def test_healthz(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["workers"] == 2
        assert set(health["cache"]) == {
            "entries", "capacity", "hits", "misses", "evictions",
        }

    def test_metrics_exposition(self, client):
        client.wait(
            client.submit(EASY, solver="bsolo-lpr", cache=False)["id"],
            timeout=60,
        )
        text = client.metrics_text()
        assert 'service_jobs_total{outcome="done"}' in text
        assert "service_job_seconds" in text
        assert 'service_http_requests_total{code="200",route="/healthz"}' \
            in text or "service_http_requests_total" in text

    def test_unknown_job_404(self, client):
        with pytest.raises(ServiceError) as err:
            client.get("feedfeedfeedfeed")
        assert err.value.code == "not_found" and err.value.status == 404

    def test_cancel_terminal_job_conflict(self, client):
        job = client.submit(EASY, solver="bsolo-lpr", cache=False)
        client.wait(job["id"], timeout=60)
        with pytest.raises(ServiceError) as err:
            client.cancel(job["id"])
        assert err.value.code == "conflict" and err.value.status == 409

    def test_bad_submission_400(self, client):
        with pytest.raises(ServiceError) as err:
            client.submit("this is not opb")
        assert err.value.code == "bad_request" and err.value.status == 400

    def test_unknown_route_404_and_wrong_method_405(self, client):
        status, body = client._request("GET", "/nope")
        assert status == 404
        status, body = client._request("PUT", "/jobs")
        assert status == 405
        error = json.loads(body)["error"]
        assert error["code"] == "method_not_allowed"

    def test_queue_full_503(self):
        config = ServiceConfig(
            port=0, workers=1, queue_depth=1, default_deadline=30.0
        )
        with BackgroundServer(config) as small:
            tiny = ServiceClient(port=small.port)
            first = tiny.submit(
                slow_instance(20), solver="brute-force", cache=False
            )
            with pytest.raises(ServiceError) as err:
                tiny.submit(EASY, cache=False)
            assert err.value.code == "queue_full"
            assert err.value.status == 503
            tiny.cancel(first["id"])
            tiny.wait(first["id"], timeout=30)


class TestDocsContract:
    """docs/SERVICE.md must describe exactly what the server does."""

    @pytest.fixture(scope="class")
    def doc(self):
        path = os.path.join(
            os.path.dirname(__file__), "..", "docs", "SERVICE.md"
        )
        with open(path) as handle:
            return handle.read()

    def test_every_sse_event_type_documented(self, doc):
        documented = set(
            re.findall(r"^### `(\w+)` event", doc, flags=re.MULTILINE)
        )
        assert documented == set(SSE_EVENT_TYPES)

    def test_every_job_state_documented(self, doc):
        documented = set(
            re.findall(r"^\| `(\w+)` +\|", doc, flags=re.MULTILINE)
        )
        assert set(JOB_STATES) <= documented

    def test_every_error_code_documented(self, doc):
        for code, status in ERROR_CODES.items():
            assert "`%s`" % code in doc, code
            assert str(status) in doc

    def test_every_endpoint_documented(self, doc):
        for endpoint in [
            "POST /jobs",
            "GET /jobs/{id}",
            "GET /jobs/{id}/events",
            "DELETE /jobs/{id}",
            "GET /healthz",
            "GET /metrics",
        ]:
            assert endpoint in doc, endpoint

    def test_documented_events_match_live_stream(self, doc, client):
        job = client.submit(EASY, solver="bsolo-lpr", cache=False)
        client.wait(job["id"], timeout=60)
        for name, _data in client.events(job["id"]):
            assert "### `%s` event" % name in doc
