"""Unit tests for the Section 5 cut generator."""

from repro.core import CutGenerator
from repro.pb import Constraint, Objective, PBInstance


def instance_with_cardinality():
    """x1+x2+x3 >= 2 with costs 1..5 on five variables."""
    return PBInstance(
        [Constraint.at_least([1, 2, 3], 2), Constraint.clause([4, 5])],
        Objective({1: 1, 2: 2, 3: 3, 4: 4, 5: 5}),
    )


class TestKnapsackCut:
    def test_shape(self):
        cut = CutGenerator(instance_with_cardinality()).knapsack_cut(8)
        assert cut is not None
        # sum c_j x_j <= 7  ==  sum c_j ~x_j >= sum(c) - 7 = 8
        assert cut.rhs == 8
        assert all(lit < 0 for lit in cut.literals)

    def test_forces_improvement(self):
        instance = instance_with_cardinality()
        cut = CutGenerator(instance).knapsack_cut(8)
        cheap = {1: 1, 2: 1, 3: 0, 4: 1, 5: 0}  # cost 7
        expensive = {1: 1, 2: 1, 3: 1, 4: 1, 5: 0}  # cost 10
        assert cut.is_satisfied_by(cheap)
        assert not cut.is_satisfied_by(expensive)

    def test_tautology_returns_none(self):
        instance = instance_with_cardinality()
        total = sum(instance.objective.costs.values())
        assert CutGenerator(instance).knapsack_cut(total + 1) is None

    def test_no_costs_returns_none(self):
        instance = PBInstance([Constraint.clause([1])])
        assert CutGenerator(instance).knapsack_cut(5) is None


class TestCardinalityCuts:
    def test_eq13_cut_emitted(self):
        instance = instance_with_cardinality()
        cuts, proven = CutGenerator(instance).cardinality_cuts(9)
        assert not proven
        # Both constraints are cardinality constraints (the clause (4|5)
        # has threshold 1).  For {1,2,3} >= 2: V = 1 + 2 = 3 and the cut is
        # c4 x4 + c5 x5 <= 9 - 1 - 3 = 5.
        assert len(cuts) == 2
        cut = next(c for c in cuts if 4 in {abs(l) for l in c.literals})
        solution_ok = {4: 1, 5: 0, 1: 0, 2: 0, 3: 0}  # outside cost 4 <= 5
        solution_bad = {4: 1, 5: 1, 1: 0, 2: 0, 3: 0}  # outside cost 9 > 5
        assert cut.is_satisfied_by(solution_ok)
        assert not cut.is_satisfied_by(solution_bad)

    def test_optimum_proven_when_v_reaches_bound(self):
        instance = instance_with_cardinality()
        # upper = 3: V = 3 > upper - 1 = 2 -> no better solution exists
        cuts, proven = CutGenerator(instance).cardinality_cuts(3)
        assert proven

    def test_negative_literals_excluded(self):
        instance = PBInstance(
            [Constraint.at_least([-1, 2], 1)], Objective({1: 1, 2: 2, 3: 5})
        )
        cuts, proven = CutGenerator(instance).cardinality_cuts(10)
        assert cuts == [] and not proven

    def test_disabled(self):
        generator = CutGenerator(instance_with_cardinality(), cardinality_cuts=False)
        cuts, proven = generator.cardinality_cuts(9)
        assert cuts == [] and not proven

    def test_tautological_cut_skipped(self):
        instance = instance_with_cardinality()
        # huge upper: budget exceeds total outside cost
        cuts, proven = CutGenerator(instance).cardinality_cuts(100)
        assert cuts == [] and not proven


class TestCutsFor:
    def test_combined(self):
        instance = instance_with_cardinality()
        cuts, proven = CutGenerator(instance).cuts_for(9)
        assert not proven
        assert len(cuts) == 3  # knapsack + two cardinality cuts

    def test_cut_soundness_never_removes_better_solutions(self):
        """Any solution strictly cheaper than the incumbent satisfies all
        cuts (exhaustive check)."""
        import itertools

        instance = instance_with_cardinality()
        upper = 9
        cuts, proven = CutGenerator(instance).cuts_for(upper)
        assert not proven
        n = instance.num_variables
        for bits in itertools.product((0, 1), repeat=n):
            assignment = {v: bits[v - 1] for v in range(1, n + 1)}
            if not instance.check(assignment):
                continue
            cost = instance.cost(assignment)
            if cost < upper:
                for cut in cuts:
                    assert cut.is_satisfied_by(assignment), (
                        "cut %r removed solution %r of cost %d" % (cut, assignment, cost)
                    )
