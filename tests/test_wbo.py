"""Tests for the WBO soft-constraint front end (``repro.wbo``).

Covers the relaxation-variable compilation, decode's re-check of the
original soft constraints, both solver modes against a brute-force
oracle, the ``top`` hard budget, and the ``.wbo`` parser/writer.
"""

import itertools

import pytest

import repro
from repro.benchgen import generate_random_wbo, wbo_suite
from repro.core import SolverOptions
from repro.core.result import OPTIMAL, UNSATISFIABLE
from repro.pb import Constraint, Objective, PBInstance
from repro.pb.opb import OPBError, parse_wbo, write_wbo
from repro.wbo import (
    MODES,
    SoftConstraint,
    WBOInstance,
    WBOSolver,
    compile_to_pbo,
    decode,
    solve_wbo,
)


def simple_wbo(top=None):
    """Hard: a|b.  Soft: ~a (weight 2), ~b (weight 3); optimum 2."""
    return WBOInstance(
        [Constraint.clause([1, 2])],
        [
            SoftConstraint(Constraint.clause([-1]), 2),
            SoftConstraint(Constraint.clause([-2]), 3),
        ],
        num_variables=2,
        top=top,
    )


def brute_force_wbo(wbo):
    """Reference optimum by enumeration; None when hard-infeasible or
    every assignment busts ``top``."""
    best = None
    for bits in itertools.product([0, 1], repeat=wbo.num_variables):
        assignment = {v: bits[v - 1] for v in range(1, wbo.num_variables + 1)}
        if not all(c.is_satisfied_by(assignment) for c in wbo.hard):
            continue
        cost = wbo.cost_of(assignment)
        if wbo.top is not None and cost >= wbo.top:
            continue
        best = cost if best is None else min(best, cost)
    return best


class TestModel:
    def test_weights_validated(self):
        with pytest.raises(ValueError):
            SoftConstraint(Constraint.clause([1]), 0)
        with pytest.raises(ValueError):
            SoftConstraint(Constraint.clause([1]), -2)

    def test_cost_and_violations(self):
        wbo = simple_wbo()
        assert wbo.total_weight == 5
        assert wbo.cost_of({1: 1, 2: 0}) == 2
        assert wbo.violated_soft({1: 1, 2: 0}) == (0,)
        assert wbo.cost_of({1: 1, 2: 1}) == 5
        assert wbo.violated_soft({1: 0, 2: 0}) == ()


class TestCompilation:
    def test_relaxation_shape(self):
        compiled = compile_to_pbo(simple_wbo())
        # one relaxed copy per soft constraint, hard part first
        assert len(compiled.instance.constraints) == 3
        assert compiled.instance.num_variables == 4  # 2 orig + 2 relax
        assert compiled.base_cost == 0
        assert compiled.instance.objective.max_value == 5

    def test_decode_recovers_original_cost(self):
        wbo = simple_wbo()
        compiled = compile_to_pbo(wbo)
        # relax var for soft 0 set even though soft 0 actually holds:
        # decode must re-check the *original* softs, not trust r.
        assignment = {1: 0, 2: 1}
        assignment[compiled.relax_var[0]] = 1
        assignment[compiled.relax_var[1]] = 1
        model, cost, violated = decode(compiled, assignment)
        assert set(model) == {1, 2}
        assert cost == 3 and violated == (1,)

    def test_top_becomes_hard_budget(self):
        compiled = compile_to_pbo(simple_wbo(top=3))
        # the extra budget constraint outlaws cost >= 3
        assert len(compiled.instance.constraints) == 4

    def test_unsatisfiable_soft_folds_into_base_cost(self):
        wbo = WBOInstance(
            [Constraint.clause([1])],
            [
                SoftConstraint(
                    Constraint.greater_equal([(1, 1)], 5), 4
                ),  # never satisfiable
                SoftConstraint(Constraint.clause([-1]), 1),
            ],
            num_variables=1,
        )
        compiled = compile_to_pbo(wbo)
        assert compiled.base_cost == 4
        result = solve_wbo(wbo)
        assert result.status == OPTIMAL and result.cost == 5


class TestSolverModes:
    @pytest.mark.parametrize("mode", MODES)
    def test_simple_optimum(self, mode):
        result = solve_wbo(simple_wbo(), mode=mode)
        assert result.status == OPTIMAL
        assert result.cost == 2
        assert result.violated_soft == (0,)
        assert result.model == {1: 1, 2: 0}

    @pytest.mark.parametrize("mode", MODES)
    def test_top_prunes_and_can_unsat(self, mode):
        assert solve_wbo(simple_wbo(top=3), mode=mode).cost == 2
        # top=2: even the best assignment costs 2, which busts the budget
        result = solve_wbo(simple_wbo(top=2), mode=mode)
        assert result.status == UNSATISFIABLE

    @pytest.mark.parametrize("mode", MODES)
    def test_hard_unsatisfiable(self, mode):
        wbo = WBOInstance(
            [Constraint.clause([1]), Constraint.clause([-1])],
            [SoftConstraint(Constraint.clause([1]), 1)],
            num_variables=1,
        )
        assert solve_wbo(wbo, mode=mode).status == UNSATISFIABLE

    @pytest.mark.parametrize("mode", MODES)
    def test_zero_cost_when_all_softs_fit(self, mode):
        wbo = WBOInstance(
            [Constraint.clause([1, 2])],
            [SoftConstraint(Constraint.clause([1]), 7)],
            num_variables=2,
        )
        result = solve_wbo(wbo, mode=mode)
        assert result.status == OPTIMAL
        assert result.cost == 0 and result.violated_soft == ()

    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("seed", range(6))
    def test_random_instances_match_brute_force(self, mode, seed):
        wbo = generate_random_wbo(
            num_variables=6,
            num_hard=5,
            num_soft=5,
            top_probability=0.3,
            seed=seed,
        )
        expected = brute_force_wbo(wbo)
        result = solve_wbo(wbo, mode=mode)
        if expected is None:
            assert result.status == UNSATISFIABLE
        else:
            assert result.status == OPTIMAL
            assert result.cost == expected
            if result.model is not None:
                assert wbo.cost_of(result.model) == expected

    def test_core_guided_records_cores(self):
        solver = WBOSolver(simple_wbo(), mode="core-guided")
        result = solver.solve()
        assert result.cost == 2
        assert len(solver.cores) >= 1
        for core in solver.cores:
            assert all(0 <= index < 2 for index in core)

    def test_options_respected(self):
        result = solve_wbo(
            simple_wbo(), options=SolverOptions(lower_bound="mis")
        )
        assert result.cost == 2

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            WBOSolver(simple_wbo(), mode="portfolio")


class TestWboFormat:
    def test_round_trip(self):
        wbo = simple_wbo(top=4)
        text = write_wbo(wbo)
        parsed = parse_wbo(text)
        assert parsed.top == 4
        assert len(parsed.hard) == 1
        assert [s.weight for s in parsed.soft] == [2, 3]
        assert solve_wbo(parsed).cost == solve_wbo(wbo).cost

    def test_parse_soft_header_and_weights(self):
        parsed = parse_wbo(
            "* comment\nsoft: 7 ;\n+1 x1 +1 x2 >= 1 ;\n[3] +1 x1 >= 1 ;\n"
        )
        assert parsed.top == 7
        assert len(parsed.hard) == 1 and len(parsed.soft) == 1
        assert parsed.soft[0].weight == 3

    def test_bare_soft_header_means_no_top(self):
        parsed = parse_wbo("soft: ;\n[1] +1 x1 >= 1 ;\n")
        assert parsed.top is None

    def test_soft_equality_rejected(self):
        with pytest.raises(OPBError):
            parse_wbo("soft: ;\n[1] +1 x1 = 1 ;\n")

    def test_hard_equality_splits(self):
        parsed = parse_wbo("soft: ;\n+1 x1 +1 x2 = 1 ;\n[1] +1 x1 >= 1 ;\n")
        assert len(parsed.hard) == 2

    def test_header_violations_rejected(self):
        with pytest.raises(OPBError):
            parse_wbo("soft: 0 ;\n[1] +1 x1 >= 1 ;\n")
        with pytest.raises(OPBError):
            parse_wbo("soft: ;\nsoft: ;\n[1] +1 x1 >= 1 ;\n")
        with pytest.raises(OPBError):
            parse_wbo("+1 x1 >= 1 ;\nsoft: ;\n")


class TestSuiteGenerators:
    def test_wbo_suite_shapes(self):
        suite = wbo_suite(count=2, seed=42)
        assert len(suite) == 2
        for wbo in suite:
            assert wbo.soft and wbo.hard
            assert solve_wbo(wbo).status in (OPTIMAL, UNSATISFIABLE)

    def test_reexports(self):
        assert repro.WBOInstance is WBOInstance
        assert repro.solve_wbo is solve_wbo
        assert repro.parse_wbo is parse_wbo
        assert repro.write_wbo is write_wbo
