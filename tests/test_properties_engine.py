"""Property-based tests for engine explanations and LP duality."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.covering import reduce_covering
from repro.engine import Propagator
from repro.lp import GE, OPTIMAL, solve_lp
from repro.pb import Constraint, Objective, PBInstance

SLOW = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def pb_constraint(draw, max_var=6):
    size = draw(st.integers(2, max_var))
    variables = draw(
        st.lists(st.integers(1, max_var), min_size=size, max_size=size, unique=True)
    )
    terms = [
        (draw(st.integers(1, 5)), var if draw(st.booleans()) else -var)
        for var in variables
    ]
    rhs = draw(st.integers(1, sum(c for c, _ in terms)))
    return Constraint.greater_equal(terms, rhs)


class TestExplanationProperties:
    @SLOW
    @given(pb_constraint(), st.integers(0, 10**6))
    def test_violation_explanation_sufficient_and_tight(self, constraint, salt):
        """The greedy explanation's coefficients alone exceed total - rhs,
        and every reported literal is false."""
        import random

        if constraint.is_tautology or constraint.is_unsatisfiable:
            return
        rng = random.Random(salt)
        n = max(abs(l) for l in constraint.literals)
        prop = Propagator(n)
        prop.add_constraint(constraint)
        # falsify literals one by one until violated (if possible)
        literals = list(constraint.literals)
        rng.shuffle(literals)
        stored = prop.database.constraints[0]
        for lit in literals:
            if stored.slack < 0:
                break
            prop.decide(-lit)
        if stored.slack >= 0:
            return  # could not violate (propagation would fire first)
        explanation = prop.explain_violation(stored)
        total = sum(c for c, _ in constraint.terms)
        covered = sum(constraint.coefficient(lit) for lit in explanation)
        assert covered > total - constraint.rhs
        for lit in explanation:
            assert prop.trail.literal_is_false(lit)

    @SLOW
    @given(pb_constraint())
    def test_implication_reasons_sufficient(self, constraint):
        """Every propagation's reason forces the implied literal: the
        false-literal coefficients exceed total - rhs - coef(implied)."""
        if constraint.is_tautology or constraint.is_unsatisfiable:
            return
        n = max(abs(l) for l in constraint.literals)
        prop = Propagator(n)
        prop.add_constraint(constraint)
        prop.propagate()
        # falsify the first unassigned literal, then propagate
        for lit in constraint.literals:
            if not prop.trail.is_assigned(abs(lit)):
                prop.decide(-lit)
                break
        prop.propagate()
        total = sum(c for c, _ in constraint.terms)
        for var in range(1, n + 1):
            reason = prop.trail.reason(var)
            if reason is None or len(reason) < 1:
                continue
            implied = reason[0]
            if abs(implied) != var:
                continue
            coef = constraint.coefficient(implied)
            if coef == 0:
                continue  # implied by a different (learned) constraint
            covered = sum(constraint.coefficient(l) for l in reason[1:])
            assert covered > total - constraint.rhs - coef


class TestLPDuality:
    @SLOW
    @given(st.integers(0, 10**6))
    def test_weak_duality_on_covering_lps(self, seed):
        """y >= 0 and y . b <= optimum for >=-row LPs (weak duality)."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 7))
        m = int(rng.integers(1, 6))
        c = rng.integers(1, 9, size=n).astype(float)
        A = rng.integers(0, 4, size=(m, n)).astype(float)
        b = np.minimum(A.sum(axis=1), rng.integers(1, 4, size=m)).astype(float)
        result = solve_lp(c, A, b, [GE] * m, upper=np.ones(n))
        if result.status != OPTIMAL:
            return
        duals = np.asarray(result.duals)
        # duals of >= rows in a min problem are non-negative (tolerance)
        assert np.all(duals >= -1e-6)
        # weak duality with upper bounds: y.b - sum(max(0, y.A - c)) <= z*
        reduced_violation = np.maximum(duals @ A - c, 0.0).sum()
        assert duals @ b - reduced_violation <= result.objective + 1e-6


class TestCoveringReducerProperties:
    @SLOW
    @given(st.integers(0, 10**6))
    def test_forced_assignments_extendable_to_optimum(self, seed):
        import itertools
        import random

        rng = random.Random(seed)
        n = rng.randint(2, 5)
        constraints = []
        for _ in range(rng.randint(1, 6)):
            variables = rng.sample(range(1, n + 1), rng.randint(1, n))
            constraints.append(
                Constraint.clause(
                    [v if rng.random() < 0.6 else -v for v in variables]
                )
            )
        instance = PBInstance(
            constraints,
            Objective({v: rng.randint(0, 4) for v in range(1, n + 1)}),
            num_variables=n,
        )
        result = reduce_covering(instance)
        best = None
        best_with_forced = None
        for bits in itertools.product((0, 1), repeat=n):
            assignment = {v: bits[v - 1] for v in range(1, n + 1)}
            if not instance.check(assignment):
                continue
            cost = instance.cost(assignment)
            best = cost if best is None else min(best, cost)
            if all(assignment[v] == val for v, val in result.forced.items()):
                best_with_forced = (
                    cost if best_with_forced is None else min(best_with_forced, cost)
                )
        if best is None:
            return  # unsatisfiable; conflict flag may or may not fire
        assert not result.conflict
        assert best_with_forced == best  # reductions preserve an optimum
