"""Unit tests for the bounded-variable two-phase simplex."""

import math

import numpy as np
import pytest

from repro.lp import (
    EQ,
    GE,
    INFEASIBLE,
    LE,
    OPTIMAL,
    UNBOUNDED,
    SimplexSolver,
    solve_lp,
)


class TestBasicSolves:
    def test_trivial_one_var(self):
        # min x s.t. x >= 0.5, 0 <= x <= 1
        result = solve_lp([1.0], [[1.0]], [0.5], [GE], upper=[1.0])
        assert result.status == OPTIMAL
        assert result.objective == pytest.approx(0.5)
        assert result.x[0] == pytest.approx(0.5)

    def test_two_var_covering(self):
        # min 3x + 2y s.t. x + y >= 1; optimum y = 1
        result = solve_lp([3.0, 2.0], [[1.0, 1.0]], [1.0], [GE], upper=[1.0, 1.0])
        assert result.status == OPTIMAL
        assert result.objective == pytest.approx(2.0)
        assert result.x[1] == pytest.approx(1.0)

    def test_le_row(self):
        # min -x s.t. x <= 0.75 -> x = 0.75 (upper bound 1 not binding)
        result = solve_lp([-1.0], [[1.0]], [0.75], [LE], upper=[1.0])
        assert result.status == OPTIMAL
        assert result.x[0] == pytest.approx(0.75)

    def test_eq_row(self):
        # min x + y s.t. x + 2y = 1
        result = solve_lp([1.0, 1.0], [[1.0, 2.0]], [1.0], [EQ], upper=[1.0, 1.0])
        assert result.status == OPTIMAL
        assert result.objective == pytest.approx(0.5)
        assert result.x[1] == pytest.approx(0.5)

    def test_fractional_lp_vertex(self):
        # min x1 + x2 s.t. x1 + x2 >= 1, x1 - x2 >= 0, classic half-half
        result = solve_lp(
            [1.0, 1.0],
            [[1.0, 1.0], [1.0, -1.0]],
            [1.0, 0.0],
            [GE, GE],
            upper=[1.0, 1.0],
        )
        assert result.status == OPTIMAL
        assert result.objective == pytest.approx(1.0)

    def test_upper_bounds_respected(self):
        # min -x1 - x2 s.t. x1 + x2 <= 3 with x <= 1 each: optimum -2
        result = solve_lp(
            [-1.0, -1.0], [[1.0, 1.0]], [3.0], [LE], upper=[1.0, 1.0]
        )
        assert result.status == OPTIMAL
        assert result.objective == pytest.approx(-2.0)
        assert np.all(result.x <= 1.0 + 1e-9)


class TestStatuses:
    def test_infeasible(self):
        # x >= 2 with x <= 1
        result = solve_lp([1.0], [[1.0]], [2.0], [GE], upper=[1.0])
        assert result.status == INFEASIBLE

    def test_infeasible_conflicting_rows(self):
        result = solve_lp(
            [0.0], [[1.0], [-1.0]], [0.8, -0.2], [GE, GE], upper=[1.0]
        )
        assert result.status == INFEASIBLE

    def test_unbounded(self):
        # min -x with x unbounded above
        result = solve_lp([-1.0], [[1.0]], [0.0], [GE])
        assert result.status == UNBOUNDED

    def test_iteration_limit(self):
        result = SimplexSolver(
            [1.0, 1.0],
            [[1.0, 1.0]],
            [1.0],
            [GE],
            upper=[1.0, 1.0],
            max_iterations=0,
        ).solve()
        assert result.status == "iteration_limit"


class TestDiagnostics:
    def test_slacks_and_tight_rows(self):
        result = solve_lp(
            [1.0, 1.0],
            [[1.0, 0.0], [1.0, 1.0]],
            [0.25, 0.25],
            [GE, GE],
            upper=[1.0, 1.0],
        )
        assert result.status == OPTIMAL
        # x1 = 0.25 satisfies both rows; row 1 slack 0, row 2 slack 0
        tight = result.tight_rows()
        assert 0 in tight

    def test_duals_sign_for_ge(self):
        # Binding >= row in a min problem has non-negative dual.
        result = solve_lp([2.0], [[1.0]], [0.5], [GE], upper=[1.0])
        assert result.status == OPTIMAL
        assert result.duals[0] >= -1e-9

    def test_activities(self):
        result = solve_lp([1.0], [[2.0]], [1.0], [GE], upper=[1.0])
        assert result.activities[0] == pytest.approx(1.0)

    def test_iterations_counted(self):
        result = solve_lp([1.0], [[1.0]], [0.5], [GE], upper=[1.0])
        assert result.iterations > 0


class TestValidation:
    def test_bad_shape(self):
        with pytest.raises(ValueError):
            SimplexSolver([1.0], [[1.0, 2.0]], [1.0], [GE])

    def test_bad_sense(self):
        with pytest.raises(ValueError):
            SimplexSolver([1.0], [[1.0]], [1.0], ["=="])

    def test_negative_upper(self):
        with pytest.raises(ValueError):
            SimplexSolver([1.0], [[1.0]], [1.0], [GE], upper=[-1.0])

    def test_bad_upper_length(self):
        with pytest.raises(ValueError):
            SimplexSolver([1.0], [[1.0]], [1.0], [GE], upper=[1.0, 1.0])


class TestAgainstScipy:
    """Cross-validation against scipy.optimize.linprog on random LPs."""

    @pytest.mark.parametrize("seed", range(12))
    def test_random_box_lps(self, seed):
        scipy_opt = pytest.importorskip("scipy.optimize")
        rng = np.random.default_rng(seed)
        n = rng.integers(2, 7)
        m = rng.integers(1, 6)
        c = rng.integers(-5, 10, size=n).astype(float)
        A = rng.integers(-3, 4, size=(m, n)).astype(float)
        b = rng.integers(-2, 5, size=m).astype(float)
        senses = [GE if rng.random() < 0.7 else LE for _ in range(m)]
        upper = np.ones(n)

        ours = solve_lp(c, A, b, senses, upper=upper)

        A_ub, b_ub = [], []
        for i, sense in enumerate(senses):
            if sense == GE:
                A_ub.append(-A[i])
                b_ub.append(-b[i])
            else:
                A_ub.append(A[i])
                b_ub.append(b[i])
        ref = scipy_opt.linprog(
            c, A_ub=np.array(A_ub), b_ub=np.array(b_ub), bounds=[(0, 1)] * n,
            method="highs",
        )
        if ref.status == 2:
            assert ours.status == INFEASIBLE
        else:
            assert ref.status == 0
            assert ours.status == OPTIMAL
            assert ours.objective == pytest.approx(ref.fun, abs=1e-6)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_covering_lps(self, seed):
        """Non-negative covering LPs (always feasible at x = 1)."""
        scipy_opt = pytest.importorskip("scipy.optimize")
        rng = np.random.default_rng(100 + seed)
        n = int(rng.integers(3, 10))
        m = int(rng.integers(2, 8))
        c = rng.integers(1, 10, size=n).astype(float)
        A = rng.integers(0, 4, size=(m, n)).astype(float)
        # ensure each row can be satisfied
        b = np.minimum(A.sum(axis=1), rng.integers(1, 5, size=m)).astype(float)
        ours = solve_lp(c, A, b, [GE] * m, upper=np.ones(n))
        ref = scipy_opt.linprog(
            c, A_ub=-A, b_ub=-b, bounds=[(0, 1)] * n, method="highs"
        )
        assert ref.status == 0 and ours.status == OPTIMAL
        assert ours.objective == pytest.approx(ref.fun, abs=1e-6)
