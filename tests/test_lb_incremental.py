"""Differential tests: incremental bounders vs their cold references.

The incremental machinery (trail-delta MIS cache, warm-started simplex)
must be *invisible*: at every node of any walk the incremental bounder
returns the same ``(value, infeasible)`` as a cold bounder handed the
same partial assignment.  These tests replay seeded decision walks on a
real propagation engine and compare the pairs in lockstep, then check
the solver end-to-end under every incremental/cold configuration.
"""

import random

import pytest

from repro.core.options import SolverOptions
from repro.core.solver import BsoloSolver
from repro.engine.interface import Conflict, make_engine
from repro.experiments.lbbench import bench_drive, drive_walk
from repro.lp import LPRelaxationBound
from repro.mis import MISBound
from repro.pb import Constraint, Objective, PBInstance


def random_instance(seed: int, num_variables: int = 14) -> PBInstance:
    rng = random.Random(seed)
    constraints = []
    for _ in range(rng.randint(6, 14)):
        arity = rng.randint(2, 5)
        variables = rng.sample(range(1, num_variables + 1), arity)
        terms = [
            (rng.randint(1, 4), var if rng.random() < 0.7 else -var)
            for var in variables
        ]
        rhs = rng.randint(1, max(1, sum(coef for coef, _ in terms) // 2))
        constraints.append(Constraint.greater_equal(terms, rhs))
    costs = {
        var: rng.randint(1, 9)
        for var in range(1, num_variables + 1)
        if rng.random() < 0.8
    }
    if not costs:
        costs = {1: 1}
    return PBInstance(constraints, Objective(costs), num_variables)


def walk_nodes(instance, seed, max_nodes):
    """Yield the ``fixed`` mapping of each non-conflicting node of a
    seeded decide/propagate/backtrack walk, with the live trail."""
    engine = make_engine("counter", instance.num_variables)
    for constraint in instance.constraints:
        engine.add_constraint(constraint)
    if isinstance(engine.propagate(), Conflict):
        return
    trail = engine.trail
    rng = random.Random(seed)
    order = list(range(1, instance.num_variables + 1))
    values = trail._value
    yield trail, trail.assignment()
    nodes = 1
    while nodes < max_nodes:
        progressed = False
        rng.shuffle(order)
        for variable in order:
            if nodes >= max_nodes:
                return
            if values[variable] >= 0:
                continue
            engine.decide(variable if rng.random() < 0.5 else -variable)
            progressed = True
            if isinstance(engine.propagate(), Conflict):
                level = trail.decision_level
                if level == 0:
                    return
                engine.backtrack(level - 1)
                continue
            yield trail, trail.assignment()
            nodes += 1
        if not progressed:
            return
        engine.backtrack(0)


class TestMISLockstep:
    @pytest.mark.parametrize("seed", range(12))
    def test_incremental_equals_cold(self, seed):
        instance = random_instance(seed)
        incremental = MISBound(instance)
        cold = MISBound(instance)
        attached = False
        for trail, fixed in walk_nodes(instance, seed + 500, max_nodes=50):
            if not attached:
                incremental.attach_trail(trail)
                attached = True
            a = incremental.compute(fixed)
            b = cold.compute(fixed)
            assert (a.value, a.infeasible) == (b.value, b.infeasible)
            assert [tuple(c) for c in a.explanation] == [
                tuple(c) for c in b.explanation
            ]
        assert incremental.cache_hits > 0 or incremental.num_calls <= 1

    def test_extras_churn(self):
        instance = random_instance(99)
        incremental = MISBound(instance)
        cold = MISBound(instance)
        cut_a = Constraint.clause([1, 2, 3])
        cut_b = Constraint.clause([2, 4])
        for extras in ([], [cut_a], [cut_a, cut_b], [cut_b], []):
            a = incremental.compute({}, extras)
            b = cold.compute({}, extras)
            assert (a.value, a.infeasible) == (b.value, b.infeasible)


class TestLPRLockstep:
    @pytest.mark.parametrize("seed", range(8))
    def test_warm_equals_cold(self, seed):
        instance = random_instance(seed, num_variables=10)
        warm = LPRelaxationBound(instance)
        cold = LPRelaxationBound(instance, warm=False)
        attached = False
        for trail, fixed in walk_nodes(instance, seed + 900, max_nodes=30):
            if not attached:
                warm.attach_trail(trail)
                attached = True
            a = warm.compute(fixed)
            b = cold.compute(fixed)
            assert (a.value, a.infeasible) == (b.value, b.infeasible)

    def test_warm_path_actually_used(self):
        instance = random_instance(3, num_variables=10)
        warm = LPRelaxationBound(instance)
        for _, fixed in walk_nodes(instance, 42, max_nodes=25):
            warm.compute(fixed)
        assert warm.warm_calls > 0

    def test_extras_rebuild(self):
        instance = random_instance(7, num_variables=8)
        warm = LPRelaxationBound(instance)
        cold = LPRelaxationBound(instance, warm=False)
        cut = Constraint.clause([1, 2])
        for extras in ([], [cut], []):
            a = warm.compute({}, extras)
            b = cold.compute({}, extras)
            assert (a.value, a.infeasible) == (b.value, b.infeasible)


class TestBenchDriveLockstep:
    """The benchmark's own lockstep flags must hold (the CI smoke job
    asserts them from the generated report)."""

    def test_drive_walk_flags(self):
        instance = random_instance(11)
        outcome = drive_walk(instance, seed=1, max_nodes=40)
        assert outcome["mis_equal"]
        assert outcome["lpr_equal"]

    def test_bench_drive_aggregates(self):
        instances = [random_instance(s) for s in (21, 22)]
        result = bench_drive(instances, seed=5, max_nodes=25)
        assert result["lockstep_bounds_equal"]
        assert result["mis_incremental"]["calls"] == result["mis_cold"]["calls"]


class TestSolverEquivalence:
    @pytest.mark.parametrize("method", ["mis", "lpr", "hybrid"])
    @pytest.mark.parametrize("seed", range(4))
    def test_incremental_matches_cold_optimum(self, method, seed):
        instance = random_instance(seed * 31 + 2)
        results = {}
        for incremental in (True, False):
            options = SolverOptions(
                lower_bound=method,
                incremental_bounds=incremental,
                max_conflicts=3000,
                time_limit=10,
            )
            results[incremental] = BsoloSolver(instance, options).solve()
        assert results[True].status == results[False].status
        if results[True].status == "optimal":
            assert results[True].best_cost == results[False].best_cost

    def test_warm_stats_surface_in_lb_stats(self):
        instance = random_instance(5)
        options = SolverOptions(lower_bound="lpr", max_conflicts=2000)
        solver = BsoloSolver(instance, options)
        solver.solve()
        lpr = solver.stats.lb_stats.get("lpr")
        if lpr is not None:  # constant objectives have no bounder
            assert lpr["calls"] == lpr["warm_calls"] + lpr["cold_calls"]
