"""Unit tests for VSIDS activity."""

import pytest

from repro.engine import VSIDSActivity


class TestBumping:
    def test_bump_raises_score(self):
        act = VSIDSActivity(3)
        act.bump(2)
        assert act.activity(2) > act.activity(1)

    def test_bump_all(self):
        act = VSIDSActivity(3)
        act.bump_all([1, 3])
        assert act.activity(1) > 0 and act.activity(3) > 0
        assert act.activity(2) == 0

    def test_decay_weights_recent_conflicts(self):
        act = VSIDSActivity(2, decay=0.5)
        act.bump(1)
        act.decay()
        act.bump(2)
        assert act.activity(2) > act.activity(1)

    def test_rescale_preserves_order(self):
        act = VSIDSActivity(2, decay=0.5)
        act.bump(1)
        for _ in range(1000):
            act.decay()
        act.bump(2)  # triggers rescale territory
        assert act.activity(2) > act.activity(1)
        assert act.activity(2) < float("inf")

    def test_invalid_decay(self):
        with pytest.raises(ValueError):
            VSIDSActivity(2, decay=0.0)
        with pytest.raises(ValueError):
            VSIDSActivity(2, decay=1.5)


class TestBest:
    def test_best_of_candidates(self):
        act = VSIDSActivity(3)
        act.bump(2)
        assert act.best([1, 2, 3]) == 2

    def test_best_empty(self):
        assert VSIDSActivity(3).best([]) is None

    def test_tie_prefers_first(self):
        act = VSIDSActivity(3)
        assert act.best([2, 3]) == 2
