"""Regression tests for subtle edge cases across the stack."""

import pytest

from repro.baselines import BruteForceSolver, MILPSolver
from repro.core import SolverOptions, SolverStats, solve
from repro.core.result import SolveResult, UNKNOWN
from repro.experiments import RunRecord
from repro.lp import build_lp_data
from repro.pb import Constraint, Objective, PBInstance


class TestZeroFillRows:
    """build_lp_data's 'satisfied' flag means satisfied-by-zero-fill; the
    MILP baseline's empty-LP completion path must stay consistent."""

    def test_negative_literal_before_fixed_true(self):
        # 2~x1 + x2 >= 2 with x2 = 1: remaining requirement 2~x1 >= 1,
        # i.e. x1 must be 0 -- exactly what zero-fill produces.
        instance = PBInstance(
            [Constraint.greater_equal([(2, -1), (1, 2)], 2)],
            Objective({1: 1, 2: 1}),
        )
        data = build_lp_data(instance, fixed={2: 1})
        if data is not None and data.num_rows == 0:
            # the dropped row must be satisfied by zero-fill
            assert instance.check({1: 0, 2: 1})

    def test_milp_zero_fill_feasible(self):
        instance = PBInstance(
            [
                Constraint.greater_equal([(2, -1), (1, 2)], 2),
                Constraint.clause([2, 3]),
            ],
            Objective({1: 4, 2: 1, 3: 1}),
        )
        expected = BruteForceSolver(instance).solve()
        result = MILPSolver(instance).solve()
        assert result.status == expected.status
        assert result.best_cost == expected.best_cost
        assert instance.check(result.best_assignment)

    @pytest.mark.parametrize("seed", range(10))
    def test_milp_negative_heavy_instances(self, seed):
        import random

        rng = random.Random(3100 + seed)
        n = rng.randint(3, 6)
        constraints = []
        for _ in range(rng.randint(2, 7)):
            variables = rng.sample(range(1, n + 1), rng.randint(1, n))
            # negation-heavy: stresses the ~x -> 1-x bookkeeping
            terms = [
                (rng.randint(1, 4), -v if rng.random() < 0.7 else v)
                for v in variables
            ]
            constraint = Constraint.greater_equal(
                terms, rng.randint(1, sum(c for c, _ in terms))
            )
            if not constraint.is_tautology and not constraint.is_unsatisfiable:
                constraints.append(constraint)
        if not constraints:
            pytest.skip("degenerate draw")
        instance = PBInstance(
            constraints,
            Objective({v: rng.randint(0, 5) for v in range(1, n + 1)}),
            num_variables=n,
        )
        expected = BruteForceSolver(instance).solve()
        result = MILPSolver(instance).solve()
        assert result.status == expected.status
        if expected.best_cost is not None:
            assert result.best_cost == expected.best_cost
            assert instance.check(result.best_assignment)


class TestReportingEdges:
    def test_unknown_without_incumbent_is_time(self):
        record = RunRecord("x", "inst", SolveResult(UNKNOWN), 1.0)
        assert record.cell() == "time"
        assert not record.solved

    def test_unknown_with_incumbent_is_ub(self):
        record = RunRecord("x", "inst", SolveResult(UNKNOWN, best_cost=7), 1.0)
        assert record.cell() == "ub 7"

    def test_run_record_repr(self):
        record = RunRecord("x", "inst", SolveResult(UNKNOWN), 1.0)
        assert "inst" in repr(record)

    def test_stats_repr_and_backjumps(self):
        stats = SolverStats()
        stats.record_backjump(5, 2)
        stats.record_backjump(3, 2)
        assert stats.backjump_total == 4
        assert stats.backjump_max == 3
        assert "decisions" in repr(stats)

    def test_result_table_entry_variants(self):
        assert SolveResult("optimal", best_cost=3).table_entry() == "optimal"
        assert SolveResult(UNKNOWN, best_cost=3).table_entry() == "ub 3"
        assert SolveResult(UNKNOWN).table_entry() == "time"


class TestOptionFactories:
    def test_named_constructors(self):
        assert SolverOptions.plain().lower_bound == "plain"
        assert SolverOptions.with_mis().lower_bound == "mis"
        assert SolverOptions.with_lgr().lower_bound == "lgr"
        assert SolverOptions.with_lpr().lower_bound == "lpr"

    def test_repr(self):
        assert "lpr" in repr(SolverOptions())


class TestWeirdInstances:
    def test_all_variables_unconstrained(self):
        instance = PBInstance([], Objective({1: 4, 2: 1}), num_variables=3)
        result = solve(instance)
        assert result.best_cost == 0

    def test_single_variable_forced_both_ways(self):
        instance = PBInstance(
            [Constraint.clause([1]), Constraint.clause([-1])]
        )
        result = solve(instance)
        assert result.status == "unsatisfiable"

    def test_huge_coefficients(self):
        instance = PBInstance(
            [Constraint.greater_equal([(10**9, 1), (1, 2)], 10**9)],
            Objective({1: 10**6, 2: 1}),
        )
        result = solve(instance)
        assert result.status == "optimal"
        # x1 = 1 satisfies alone at cost 10**6; x2 = 1 alone cannot reach
        assert result.best_cost == 10**6

    def test_duplicate_constraints(self):
        clause = Constraint.clause([1, 2])
        instance = PBInstance([clause, clause, clause], Objective({1: 1, 2: 2}))
        result = solve(instance)
        assert result.best_cost == 1
