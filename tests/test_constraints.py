"""Unit tests for constraint normalization and classification."""

import math

import pytest

from repro.pb import Constraint, ConstraintError, normalize_terms


class TestNormalizeTerms:
    def test_already_normal(self):
        terms, rhs = normalize_terms([(2, 1), (3, -2)], 3)
        assert terms == ((2, 1), (3, -2))
        assert rhs == 3

    def test_negative_coefficient_flips_literal(self):
        # -2*x1 >= -1   ==   2*~x1 >= 1
        terms, rhs = normalize_terms([(-2, 1)], -1)
        assert terms == ((1, -1),)  # saturated from 2 to rhs 1
        assert rhs == 1

    def test_negative_coefficient_unsaturated(self):
        terms, rhs = normalize_terms([(-2, 1), (5, 2)], 0, saturate=False)
        assert terms == ((2, -1), (5, 2))
        assert rhs == 2

    def test_duplicate_literals_merge(self):
        terms, rhs = normalize_terms([(1, 1), (2, 1)], 2)
        assert terms == ((2, 1),)  # 3 saturated to 2
        assert rhs == 2

    def test_opposing_literals_cancel(self):
        # 3*x1 + 1*~x1 >= 2  ==  1 + 2*x1 >= 2  ==  2*x1 >= 1
        terms, rhs = normalize_terms([(3, 1), (1, -1)], 2)
        assert terms == ((1, 1),)  # saturated
        assert rhs == 1

    def test_opposing_literals_full_cancel(self):
        terms, rhs = normalize_terms([(2, 1), (2, -1)], 2)
        assert terms == ()
        assert rhs == 0  # tautology

    def test_zero_coefficient_dropped(self):
        terms, rhs = normalize_terms([(0, 1), (1, 2)], 1)
        assert terms == ((1, 2),)

    def test_tautology_when_rhs_nonpositive(self):
        terms, rhs = normalize_terms([(1, 1)], 0)
        assert terms == () and rhs == 0
        terms, rhs = normalize_terms([(1, 1)], -5)
        assert terms == () and rhs == 0

    def test_saturation(self):
        terms, rhs = normalize_terms([(10, 1), (1, 2)], 3)
        assert terms == ((3, 1), (1, 2))

    def test_sorted_by_variable(self):
        terms, _ = normalize_terms([(1, 5), (1, -2), (1, 3)], 1)
        assert [abs(lit) for _, lit in terms] == [2, 3, 5]

    def test_rejects_zero_literal(self):
        with pytest.raises(ConstraintError):
            normalize_terms([(1, 0)], 1)

    def test_rejects_non_integer_coefficient(self):
        with pytest.raises(ConstraintError):
            normalize_terms([(1.5, 1)], 1)

    def test_rejects_bool_coefficient(self):
        with pytest.raises(ConstraintError):
            normalize_terms([(True, 1)], 1)


class TestConstructors:
    def test_less_equal_negation(self):
        # x1 + x2 <= 1  ==  ~x1 + ~x2 >= 1
        constraint = Constraint.less_equal([(1, 1), (1, 2)], 1)
        assert constraint.terms == ((1, -1), (1, -2))
        assert constraint.rhs == 1

    def test_clause(self):
        constraint = Constraint.clause([1, -2, 3])
        assert constraint.is_clause
        assert constraint.rhs == 1
        assert set(constraint.literals) == {1, -2, 3}

    def test_at_least_at_most(self):
        at_least = Constraint.at_least([1, 2, 3], 2)
        assert at_least.is_cardinality
        assert at_least.cardinality_threshold == 2
        at_most = Constraint.at_most([1, 2, 3], 1)
        # at most 1 of 3  ==  at least 2 complements
        assert at_most.terms == ((1, -1), (1, -2), (1, -3))
        assert at_most.rhs == 2


class TestClassification:
    def test_clause_detection(self):
        assert Constraint.greater_equal([(2, 1), (3, 2)], 2).is_clause
        assert not Constraint.greater_equal([(1, 1), (3, 2)], 2).is_clause

    def test_cardinality_detection(self):
        card = Constraint.greater_equal([(2, 1), (2, 2), (2, 3)], 4)
        assert card.is_cardinality
        assert card.cardinality_threshold == 2
        assert not Constraint.greater_equal([(1, 1), (2, 2)], 2).is_cardinality

    def test_cardinality_threshold_requires_cardinality(self):
        mixed = Constraint.greater_equal([(1, 1), (2, 2)], 2)
        with pytest.raises(ValueError):
            mixed.cardinality_threshold

    def test_clause_is_cardinality(self):
        assert Constraint.clause([1, 2]).is_cardinality

    def test_unsatisfiable(self):
        constraint = Constraint.greater_equal([(1, 1)], 5)
        assert constraint.is_unsatisfiable
        assert not constraint.is_tautology

    def test_tautology(self):
        constraint = Constraint.greater_equal([(1, 1)], 0)
        assert constraint.is_tautology
        assert not constraint.is_clause


class TestEvaluation:
    def test_satisfied(self):
        constraint = Constraint.greater_equal([(2, 1), (3, -2)], 3)
        assert constraint.is_satisfied_by({1: 0, 2: 0})  # ~x2 true -> 3
        assert not constraint.is_satisfied_by({1: 1, 2: 1})  # only 2

    def test_lhs_requires_complete_assignment(self):
        constraint = Constraint.greater_equal([(2, 1), (3, -2)], 3)
        with pytest.raises(ValueError):
            constraint.left_hand_side({1: 1})

    def test_slack_partial(self):
        constraint = Constraint.greater_equal([(2, 1), (3, -2), (1, 3)], 3)
        # nothing assigned: slack = 6 - 3
        assert constraint.slack({}) == 3
        # x2 = 1 makes ~x2 false: slack = 3 - 3
        assert constraint.slack({2: 1}) == 0
        # additionally x1 = 0: slack = 1 - 3
        assert constraint.slack({2: 1, 1: 0}) == -2

    def test_coefficient_lookup(self):
        constraint = Constraint.greater_equal([(2, 1), (3, -2)], 3)
        assert constraint.coefficient(1) == 2
        assert constraint.coefficient(-2) == 3
        assert constraint.coefficient(2) == 0
        assert constraint.coefficient(9) == 0


class TestIntegerForm:
    def test_positive_literals(self):
        weights, r = Constraint.greater_equal([(2, 1), (3, 2)], 3).integer_form()
        assert weights == {1: 2, 2: 3}
        assert r == 3

    def test_negative_literal_substitution(self):
        # 3*~x2 >= 2 saturates to 2*~x2 >= 2 == 2 - 2*x2 >= 2 == -2*x2 >= 0
        weights, r = Constraint.greater_equal([(3, -2)], 2).integer_form()
        assert weights == {2: -2}
        assert r == 0

    def test_negative_literal_unsaturated(self):
        # 3*~x2 + 5*x1 >= 4: x1 saturates to 4, giving
        # 4*x1 + 3 - 3*x2 >= 4  ==  4*x1 - 3*x2 >= 1
        weights, r = Constraint.greater_equal([(3, -2), (5, 1)], 4).integer_form()
        assert weights == {1: 4, 2: -3}
        assert r == 1


class TestMisc:
    def test_equality_and_hash(self):
        a = Constraint.greater_equal([(1, 1), (1, 2)], 1)
        b = Constraint.clause([1, 2])
        assert a == b
        assert hash(a) == hash(b)
        assert a != Constraint.clause([1, 3])

    def test_repr_mentions_terms(self):
        text = repr(Constraint.greater_equal([(2, 1), (1, -3)], 2))
        assert "x1" in text and "~x3" in text and ">= 2" in text

    def test_len_and_iter(self):
        constraint = Constraint.clause([1, 2, 3])
        assert len(constraint) == 3
        assert list(constraint) == [(1, 1), (1, 2), (1, 3)]

    def test_minimum_true_literals(self):
        constraint = Constraint.greater_equal([(3, 1), (2, 2), (1, 3)], 4, )
        assert constraint.minimum_true_literals() == 2
        assert Constraint.clause([1, 2]).minimum_true_literals() == 1

    def test_minimum_true_literals_unsat(self):
        constraint = Constraint(((1, 1),), 5)  # bypass normalization
        assert constraint.minimum_true_literals() == math.inf
