"""Tests for the experiments command-line entry point."""

import os

import pytest

from repro.experiments.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_flags(self):
        args = build_parser().parse_args(["table1", "--fast"])
        assert args.command == "table1" and args.fast

    def test_unknown_family_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bounds", "--family", "nonsense"])


class TestCommands:
    def test_bounds(self, capsys):
        assert main(["bounds", "--family", "mcnc", "--count", "1",
                     "--lgr-iterations", "30"]) == 0
        out = capsys.readouterr().out
        assert "LPR >= MIS" in out

    def test_scaling(self, capsys):
        assert main([
            "scaling", "--family", "ptl", "--sizes", "5", "6",
            "--solvers", "bsolo-mis", "--time-limit", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "size" in out

    def test_scaling_crossover_line(self, capsys):
        assert main([
            "scaling", "--family", "ptl", "--sizes", "5",
            "--solvers", "bsolo-plain", "bsolo-mis", "--time-limit", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "crossover" in out

    def test_ablations(self, capsys):
        assert main([
            "ablations", "--family", "mcnc", "--count", "1",
            "--scale", "0.2", "--time-limit", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "configuration" in out

    def test_export(self, tmp_path, capsys):
        directory = str(tmp_path / "suite")
        assert main([
            "export", "--directory", directory, "--count", "1", "--scale", "0.3",
        ]) == 0
        out = capsys.readouterr().out
        assert "wrote 4 instances" in out
        assert os.path.exists(os.path.join(directory, "MANIFEST.txt"))

    def test_table1_tiny(self, capsys):
        assert main([
            "table1", "--count", "1", "--time-limit", "3", "--scale", "0.3",
        ]) == 0
        out = capsys.readouterr().out
        assert "#Solved" in out
        assert "acc rows identical: True" in out
