"""Unit tests for counter-based PB propagation."""

import pytest

from repro.engine import Propagator
from repro.pb import Constraint


def propagator_with(num_vars, constraints):
    prop = Propagator(num_vars)
    for constraint in constraints:
        assert prop.add_constraint(constraint) is None
    assert prop.propagate() is None
    return prop


class TestSlackBookkeeping:
    def test_initial_slack(self):
        prop = Propagator(3)
        prop.add_constraint(Constraint.greater_equal([(2, 1), (3, -2), (1, 3)], 3))
        (stored,) = prop.database.constraints
        assert stored.slack == 3

    def test_slack_decreases_when_literal_false(self):
        prop = propagator_with(3, [Constraint.greater_equal([(2, 1), (3, -2), (1, 3)], 3)])
        prop.decide(2)  # makes ~x2 false
        (stored,) = prop.database.constraints
        assert stored.slack == 0

    def test_slack_restored_on_backtrack(self):
        prop = propagator_with(3, [Constraint.greater_equal([(2, 1), (3, -2), (1, 3)], 3)])
        prop.decide(2)
        prop.backtrack(0)
        (stored,) = prop.database.constraints
        assert stored.slack == 3
        prop.database.check_slacks()

    def test_check_slacks_detects_drift(self):
        prop = propagator_with(2, [Constraint.clause([1, 2])])
        prop.database.constraints[0].slack = 99
        with pytest.raises(AssertionError):
            prop.database.check_slacks()


class TestUnitPropagation:
    def test_unit_clause_propagates(self):
        prop = Propagator(2)
        prop.add_constraint(Constraint.clause([1, 2]))
        prop.decide(-1)
        assert prop.propagate() is None
        assert prop.trail.literal_is_true(2)
        assert prop.trail.reason(2) == (2, 1)

    def test_chain_propagation(self):
        prop = Propagator(4)
        prop.add_constraint(Constraint.clause([-1, 2]))
        prop.add_constraint(Constraint.clause([-2, 3]))
        prop.add_constraint(Constraint.clause([-3, 4]))
        prop.decide(1)
        assert prop.propagate() is None
        assert all(prop.trail.literal_is_true(l) for l in (2, 3, 4))

    def test_pb_implication(self):
        # 3*x1 + 2*x2 + 2*x3 >= 5: x1 is implied immediately (slack 2 < 3)
        prop = Propagator(3)
        prop.add_constraint(Constraint.greater_equal([(3, 1), (2, 2), (2, 3)], 5))
        assert prop.propagate() is None
        assert prop.trail.literal_is_true(1)
        assert prop.trail.level(1) == 0

    def test_pb_implication_after_assignment(self):
        # 3*x1 + 2*x2 + 2*x3 >= 4: nothing implied initially (slack 3)
        prop = Propagator(3)
        prop.add_constraint(Constraint.greater_equal([(3, 1), (2, 2), (2, 3)], 4))
        assert prop.propagate() is None
        assert len(prop.trail) == 0
        prop.decide(-2)  # slack 1 -> x1 and x3 both implied
        assert prop.propagate() is None
        assert prop.trail.literal_is_true(1)
        assert prop.trail.literal_is_true(3)

    def test_propagation_counter(self):
        prop = Propagator(2)
        prop.add_constraint(Constraint.clause([1, 2]))
        prop.decide(-1)
        prop.propagate()
        assert prop.num_propagations == 1


class TestConflicts:
    def test_clause_conflict(self):
        prop = Propagator(2)
        prop.add_constraint(Constraint.clause([1, 2]))
        prop.decide(-1)
        assert prop.propagate() is None
        prop.backtrack(0)
        prop.decide(-1)
        prop.decide(-2)
        conflict = prop.propagate()
        assert conflict is not None
        assert set(conflict.literals) == {1, 2}

    def test_pb_conflict_explanation_is_minimal_greedy(self):
        # 2*x1 + x2 + x3 >= 2 with x1, x2, x3 all false: the greedy
        # explanation takes x1 (coef 2) and x2 and can drop x3.
        prop = Propagator(3)
        prop.add_constraint(Constraint.greater_equal([(2, 1), (1, 2), (1, 3)], 2))
        prop.decide(-2)
        prop.decide(-3)
        prop.decide(-1)
        conflict = prop.propagate()
        assert conflict is not None
        assert set(conflict.literals) == {1, 2}  # x3 not needed to explain

    def test_conflict_on_add_constraint(self):
        prop = Propagator(2)
        prop.decide(-1)
        prop.decide(-2)
        conflict = prop.add_constraint(Constraint.clause([1, 2]))
        assert conflict is not None
        assert set(conflict.literals) == {1, 2}

    def test_added_constraint_propagates(self):
        prop = Propagator(2)
        prop.decide(-1)
        assert prop.add_constraint(Constraint.clause([1, 2])) is None
        assert prop.propagate() is None
        assert prop.trail.literal_is_true(2)


class TestReasons:
    def test_pb_reason_sufficient(self):
        # 2*x1 + 2*x2 + 1*x3 + 1*x4 >= 3; after ~x1, ~x3: slack = 3-3... let
        # us force x2: total=6, rhs=3. Falsify x1 (slack 1): x2 implied
        # (coef 2 > 1). Reason needs false coef sum > 6-3-2 = 1: {~x1} (coef
        # 2) suffices; x3/x4 must not appear.
        prop = Propagator(4)
        prop.add_constraint(
            Constraint.greater_equal([(2, 1), (2, 2), (1, 3), (1, 4)], 3)
        )
        prop.decide(-1)
        assert prop.propagate() is None
        assert prop.trail.literal_is_true(2)
        assert prop.trail.reason(2) == (2, 1)

    def test_reason_literals_all_false(self):
        prop = Propagator(3)
        prop.add_constraint(Constraint.greater_equal([(2, 1), (1, 2), (1, 3)], 3))
        prop.decide(-2)
        assert prop.propagate() is None
        for var in (1, 3):
            if prop.trail.is_assigned(var):
                reason = prop.trail.reason(var)
                if reason:
                    assert all(
                        prop.trail.literal_is_false(lit) for lit in reason[1:]
                    )


class TestBacktrackIntegration:
    def test_propagate_after_backtrack(self):
        prop = Propagator(3)
        prop.add_constraint(Constraint.clause([1, 2, 3]))
        prop.decide(-1)
        prop.decide(-2)
        assert prop.propagate() is None
        assert prop.trail.literal_is_true(3)
        prop.backtrack(1)
        assert not prop.trail.is_assigned(3)
        prop.decide(-3)
        assert prop.propagate() is None
        assert prop.trail.literal_is_true(2)
        prop.database.check_slacks()

    def test_reschedule_all(self):
        prop = Propagator(2)
        prop.add_constraint(Constraint.clause([1, 2]))
        prop.decide(-1)
        prop.propagate()
        prop.backtrack(0)
        prop.decide(-1)
        # simulate a stale queue: clear and rely on reschedule
        prop._clear_pending()
        prop.reschedule_all()
        assert prop.propagate() is None
        assert prop.trail.literal_is_true(2)

    def test_model_requires_completeness(self):
        prop = Propagator(2)
        prop.decide(1)
        with pytest.raises(ValueError):
            prop.model()
        prop.decide(2)
        assert prop.model() == {1: 1, 2: 1}
