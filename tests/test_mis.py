"""Unit tests for the MIS lower bound."""

import itertools
import math

import pytest

from repro.mis import MISBound, constraint_min_cost
from repro.pb import Constraint, Objective, PBInstance


class TestConstraintMinCost:
    def test_clause_picks_cheapest(self):
        constraint = Constraint.clause([1, 2, 3])
        cost, false_lits, free = constraint_min_cost(constraint, {}, {1: 5, 2: 2, 3: 9})
        assert cost == pytest.approx(2.0)
        assert free == {1, 2, 3}
        assert false_lits == []

    def test_negative_literal_is_free(self):
        constraint = Constraint.clause([1, -2])
        cost, _, _ = constraint_min_cost(constraint, {}, {1: 5, 2: 7})
        assert cost == pytest.approx(0.0)

    def test_satisfied_returns_none(self):
        constraint = Constraint.clause([1, 2])
        cost, _, _ = constraint_min_cost(constraint, {1: 1}, {2: 3})
        assert cost is None

    def test_unsatisfiable_returns_inf(self):
        constraint = Constraint.at_least([1, 2], 2)
        cost, false_lits, _ = constraint_min_cost(constraint, {1: 0}, {})
        assert cost == math.inf
        assert false_lits == [1]

    def test_fractional_cover(self):
        # 2*x1 + 2*x2 >= 3 with costs 4, 4: fractional optimum
        # 4 + 4*(1/2) = 6 < integer optimum 8
        constraint = Constraint.greater_equal([(2, 1), (2, 2)], 3)
        cost, _, _ = constraint_min_cost(constraint, {}, {1: 4, 2: 4})
        assert cost == pytest.approx(6.0)

    def test_false_literals_reported(self):
        constraint = Constraint.clause([1, 2, 3])
        _, false_lits, free = constraint_min_cost(constraint, {2: 0}, {1: 1, 3: 1})
        assert false_lits == [2]
        assert free == {1, 3}


class TestMISBound:
    def test_disjoint_constraints_add(self):
        instance = PBInstance(
            [Constraint.clause([1, 2]), Constraint.clause([3, 4])],
            Objective({1: 3, 2: 5, 3: 2, 4: 7}),
        )
        bound = MISBound(instance).compute({})
        assert bound.value == 5  # 3 + 2
        assert len(bound.explanation) == 2

    def test_overlapping_constraints_pick_one(self):
        instance = PBInstance(
            [Constraint.clause([1, 2]), Constraint.clause([2, 3])],
            Objective({1: 3, 2: 5, 3: 2}),
        )
        bound = MISBound(instance).compute({})
        # constraints share variable 2: only one can be selected
        assert bound.value in (2, 3)
        assert len(bound.explanation) == 1

    def test_never_exceeds_optimum(self):
        instance = PBInstance(
            [
                Constraint.clause([1, 2]),
                Constraint.clause([2, 3]),
                Constraint.clause([1, 3]),
            ],
            Objective({1: 3, 2: 2, 3: 2}),
        )
        best = None
        for bits in itertools.product([0, 1], repeat=3):
            assignment = {v: bits[v - 1] for v in range(1, 4)}
            if instance.check(assignment):
                cost = instance.cost(assignment)
                best = cost if best is None else min(best, cost)
        assert MISBound(instance).compute({}).value <= best

    def test_zero_cost_constraints_skipped(self):
        instance = PBInstance(
            [Constraint.clause([1, 2])], Objective({3: 9})
        )
        bound = MISBound(instance).compute({})
        assert bound.value == 0
        assert bound.explanation == []

    def test_infeasible_detection(self):
        instance = PBInstance([Constraint.at_least([1, 2], 2)], Objective({1: 1}))
        bound = MISBound(instance).compute({1: 0})
        assert bound.infeasible

    def test_fixed_satisfied_ignored(self):
        instance = PBInstance(
            [Constraint.clause([1, 2]), Constraint.clause([3])],
            Objective({1: 5, 2: 4, 3: 2}),
        )
        bound = MISBound(instance).compute({1: 1})
        assert bound.value == 2  # only the x3 clause contributes

    def test_extra_constraints_considered(self):
        instance = PBInstance([Constraint.clause([1, 2])], Objective({1: 1, 2: 1, 3: 4}))
        extra = Constraint.clause([3])
        bound = MISBound(instance).compute({}, extra_constraints=[extra])
        assert bound.value == 5  # 1 + 4

    def test_call_counter(self):
        mis = MISBound(PBInstance([Constraint.clause([1])], Objective({1: 1})))
        mis.compute({})
        mis.compute({})
        assert mis.num_calls == 2
