"""Smoke tests: the example scripts import and their fast paths run."""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name, timeout=120):
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "optimal" in result.stdout

    def test_scheduling_sat(self):
        result = run_example("scheduling_sat.py")
        assert result.returncode == 0, result.stderr
        assert "identical searches (footnote a): True" in result.stdout
        assert "round 0" in result.stdout

    def test_logic_covering(self):
        result = run_example("logic_covering.py")
        assert result.returncode == 0, result.stderr
        assert "root lower bounds" in result.stdout

    def test_service_client(self):
        result = run_example("service_client.py")
        assert result.returncode == 0, result.stderr
        assert "cache hit -> cached=True" in result.stdout
        assert "certified -> checker says optimal" in result.stdout

    def test_all_examples_exist(self):
        expected = {
            "quickstart.py",
            "routing_design.py",
            "logic_covering.py",
            "scheduling_sat.py",
            "reproduce_table1.py",
            "ablation_study.py",
            "lagrangian_convergence.py",
            "service_client.py",
        }
        present = {
            name for name in os.listdir(EXAMPLES) if name.endswith(".py")
        }
        assert expected <= present
