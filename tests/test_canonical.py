"""Canonical forms: renaming invariance, discrimination, cache keys."""

import io
import random

import pytest

from repro.pb.canonical import CanonicalForm, canonical_form, canonical_hash
from repro.pb.constraints import Constraint
from repro.pb.instance import PBInstance
from repro.pb.literals import variable
from repro.pb.objective import Objective
from repro.pb.opb import parse, write
from repro.benchgen.random_pb import generate_random
from repro.service.cache import ResultCache, options_signature


def parse_text(text):
    return parse(io.StringIO(text))


def permuted(instance, seed):
    """Rebuild ``instance`` under a random variable permutation."""
    rng = random.Random(seed)
    order = list(range(1, instance.num_variables + 1))
    rng.shuffle(order)
    perm = {v: order[v - 1] for v in range(1, instance.num_variables + 1)}
    constraints = [
        Constraint.greater_equal(
            [
                (coef, perm[variable(lit)] if lit > 0 else -perm[variable(lit)])
                for coef, lit in con.terms
            ],
            con.rhs,
        )
        for con in instance.constraints
    ]
    rng.shuffle(constraints)
    objective = Objective(
        {perm[v]: c for v, c in instance.objective.costs.items()},
        offset=instance.objective.offset,
    )
    return (
        PBInstance(
            constraints, objective, num_variables=instance.num_variables
        ),
        perm,
    )


BASE = (
    "min: +1 x1 +2 x2 +3 x3;\n"
    "+1 x1 +1 x2 +1 x3 >= 2;\n"
    "+2 x1 +1 x2 >= 1;\n"
)


class TestRenamingInvariance:
    def test_identical_text_same_hash(self):
        assert canonical_hash(parse_text(BASE)) == canonical_hash(
            parse_text(BASE)
        )

    def test_shuffled_constraints_same_hash(self):
        shuffled = (
            "min: +1 x1 +2 x2 +3 x3;\n"
            "+2 x1 +1 x2 >= 1;\n"
            "+1 x1 +1 x2 +1 x3 >= 2;\n"
        )
        assert canonical_hash(parse_text(BASE)) == canonical_hash(
            parse_text(shuffled)
        )

    def test_renamed_variables_same_hash(self):
        renamed = (
            "min: +3 x1 +1 x9 +2 x4;\n"
            "+1 x9 +1 x4 +1 x1 >= 2;\n"
            "+2 x9 +1 x4 >= 1;\n"
        )
        assert canonical_hash(parse_text(BASE)) == canonical_hash(
            parse_text(renamed)
        )

    def test_unused_declared_variables_ignored(self):
        # x50 inflates num_variables without occurring anywhere
        padded = BASE.replace("+2 x1 +1 x2 >= 1;", "+2 x1 +1 x2 >= 1;") + ""
        wide = (
            "min: +1 x10 +2 x20 +3 x50;\n"
            "+1 x10 +1 x20 +1 x50 >= 2;\n"
            "+2 x10 +1 x20 >= 1;\n"
        )
        assert canonical_hash(parse_text(padded)) == canonical_hash(
            parse_text(wide)
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_random_permutations_converge(self, seed):
        instance = generate_random(
            num_variables=9, num_constraints=14, seed=41
        )
        variant, _perm = permuted(instance, seed)
        assert canonical_form(instance).text == canonical_form(variant).text

    def test_permuted_roundtrip_through_opb(self, tmp_path=None):
        instance = generate_random(
            num_variables=7, num_constraints=10, seed=7
        )
        variant, _perm = permuted(instance, 3)
        assert canonical_hash(parse_text(write(instance))) == canonical_hash(
            parse_text(write(variant))
        )


class TestDiscrimination:
    def test_different_rhs_different_hash(self):
        other = BASE.replace(">= 2;", ">= 3;")
        assert canonical_hash(parse_text(BASE)) != canonical_hash(
            parse_text(other)
        )

    def test_different_coefficient_different_hash(self):
        # 2 <= rhs, so the changed coefficient survives saturation and
        # the instances are genuinely inequivalent
        other = BASE.replace(
            "+1 x1 +1 x2 +1 x3 >= 2;", "+2 x1 +1 x2 +1 x3 >= 2;"
        )
        assert canonical_hash(parse_text(BASE)) != canonical_hash(
            parse_text(other)
        )

    def test_saturated_coefficients_normalize_together(self):
        # coefficient saturation (coef capped at rhs) happens upstream in
        # Constraint, so these two spellings are the same instance
        other = BASE.replace("+2 x1 +1 x2 >= 1;", "+1 x1 +1 x2 >= 1;")
        assert canonical_hash(parse_text(BASE)) == canonical_hash(
            parse_text(other)
        )

    def test_different_objective_different_hash(self):
        other = BASE.replace("min: +1 x1 +2 x2 +3 x3;",
                             "min: +1 x1 +2 x2 +4 x3;")
        assert canonical_hash(parse_text(BASE)) != canonical_hash(
            parse_text(other)
        )

    def test_negated_literal_different_hash(self):
        other = BASE.replace("+2 x1 +1 x2 >= 1;", "+2 ~x1 +1 x2 >= 1;")
        assert canonical_hash(parse_text(BASE)) != canonical_hash(
            parse_text(other)
        )


class TestModelTranslation:
    def test_model_maps_through_renaming(self):
        instance = parse_text(BASE)
        variant, perm = permuted(instance, 11)
        form_a = canonical_form(instance)
        form_b = canonical_form(variant)
        assert form_a.text == form_b.text
        model = {1: 1, 2: 1, 3: 0}
        canonical = form_a.to_canonical_model(model)
        translated = form_b.from_canonical_model(canonical)
        # the translated model assigns the permuted image of each var
        assert translated == {perm[v]: val for v, val in model.items()}

    def test_inverse_is_inverse(self):
        form = canonical_form(parse_text(BASE))
        for orig, canon in form.renaming.items():
            assert form.inverse[canon] == orig


class TestOptionsSignature:
    def test_defaults_explicit_and_empty_agree(self):
        assert options_signature({}) == options_signature(
            {"lower_bound": "lpr"}
        )

    def test_semantic_knob_changes_signature(self):
        assert options_signature({}) != options_signature(
            {"lower_bound": "mis"}
        )
        assert options_signature({}) != options_signature(
            {"max_conflicts": 5}
        )

    def test_budget_and_instrument_knobs_ignored(self):
        assert options_signature({}) == options_signature(
            {"time_limit": 3.0}
        )


class TestResultCache:
    def _result(self, cost=3, model=None):
        return {
            "status": "optimal",
            "cost": cost,
            "model": model if model is not None else {"1": 1, "2": 1, "3": 0},
            "stats": {"conflicts": 1, "decisions": 2, "elapsed": 0.01},
        }

    def test_hit_translates_model_to_requester_numbering(self):
        cache = ResultCache(capacity=4)
        instance = parse_text(BASE)
        variant, perm = permuted(instance, 5)
        sig = options_signature({})
        form_a = canonical_form(instance)
        assert cache.lookup(form_a, "bsolo-lpr", sig) is None
        cache.store(form_a, "bsolo-lpr", sig, self._result())
        form_b = canonical_form(variant)
        hit = cache.lookup(form_b, "bsolo-lpr", sig)
        assert hit is not None and hit["cached"] is True
        assert hit["cost"] == 3
        expected = {str(perm[v]): val
                    for v, val in {1: 1, 2: 1, 3: 0}.items()}
        assert hit["model"] == expected

    def test_solver_and_options_partition_entries(self):
        cache = ResultCache(capacity=4)
        form = canonical_form(parse_text(BASE))
        sig = options_signature({})
        cache.store(form, "bsolo-lpr", sig, self._result())
        assert cache.lookup(form, "bsolo-mis", sig) is None
        assert (
            cache.lookup(
                form, "bsolo-lpr", options_signature({"lower_bound": "mis"})
            )
            is None
        )
        assert cache.lookup(form, "bsolo-lpr", sig) is not None

    def test_inconclusive_results_not_stored(self):
        cache = ResultCache(capacity=4)
        form = canonical_form(parse_text(BASE))
        sig = options_signature({})
        assert not cache.store(
            form, "bsolo-lpr", sig, {"status": "unknown", "cost": None}
        )
        assert len(cache) == 0

    def test_lru_eviction(self):
        cache = ResultCache(capacity=2)
        sig = options_signature({})
        forms = []
        for seed in range(3):
            instance = generate_random(
                num_variables=6, num_constraints=8, seed=100 + seed
            )
            form = canonical_form(instance)
            forms.append(form)
            cache.store(form, "bsolo-lpr", sig, self._result(model={}))
        assert len(cache) == 2
        assert cache.evictions == 1
        # oldest entry evicted, newest two retained
        assert cache.lookup(forms[0], "bsolo-lpr", sig) is None
        assert cache.lookup(forms[1], "bsolo-lpr", sig) is not None
        assert cache.lookup(forms[2], "bsolo-lpr", sig) is not None

    def test_lru_recency_refresh_on_hit(self):
        cache = ResultCache(capacity=2)
        sig = options_signature({})
        forms = []
        for seed in range(3):
            instance = generate_random(
                num_variables=6, num_constraints=8, seed=200 + seed
            )
            forms.append(canonical_form(instance))
        cache.store(forms[0], "bsolo-lpr", sig, self._result(model={}))
        cache.store(forms[1], "bsolo-lpr", sig, self._result(model={}))
        assert cache.lookup(forms[0], "bsolo-lpr", sig) is not None  # refresh
        cache.store(forms[2], "bsolo-lpr", sig, self._result(model={}))
        assert cache.lookup(forms[1], "bsolo-lpr", sig) is None  # evicted
        assert cache.lookup(forms[0], "bsolo-lpr", sig) is not None

    def test_capacity_zero_disables(self):
        cache = ResultCache(capacity=0)
        form = canonical_form(parse_text(BASE))
        sig = options_signature({})
        assert not cache.store(form, "bsolo-lpr", sig, self._result())
        assert cache.lookup(form, "bsolo-lpr", sig) is None

    def test_digest_collision_degrades_to_miss(self):
        cache = ResultCache(capacity=4)
        form = canonical_form(parse_text(BASE))
        sig = options_signature({})
        cache.store(form, "bsolo-lpr", sig, self._result())
        # forge a form with the same digest but different text: the
        # full-text comparison must refuse to serve the entry
        forged = CanonicalForm.__new__(CanonicalForm)
        forged.text = "vars 1\nmin 0 : 1 x1\n1 x1 >= 1\n"
        forged.key = form.key
        forged.renaming = {1: 1}
        forged._inverse = None
        assert cache.lookup(forged, "bsolo-lpr", sig) is None
