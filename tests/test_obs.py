"""Tests for the observability subsystem (repro.obs)."""

import json

import pytest

from repro import JsonlTracer, SolverOptions, parse, solve
from repro.baselines.linear_search import LinearSearchSolver
from repro.obs import (
    EVENT_KINDS,
    DecisionEvent,
    IncumbentEvent,
    LowerBoundEvent,
    ProgressEvent,
    ResultEvent,
    RunHeaderEvent,
    event_from_record,
    format_profile,
    format_progress,
    gap_history,
    read_trace,
    trace_summary,
)
from repro.obs.timers import NULL_TIMER, NullPhaseTimer, PhaseTimer
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer


OPT_INSTANCE = """\
min: +3 x1 +2 x2 +2 x3 ;
+1 x1 +1 x2 >= 1 ;
+1 x2 +1 x3 >= 1 ;
+1 x1 +1 x3 >= 1 ;
"""


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def advance(self, dt):
        self.now += dt

    def __call__(self):
        return self.now


# ----------------------------------------------------------------------
# PhaseTimer
# ----------------------------------------------------------------------
class TestPhaseTimer:
    def test_flat_phases(self):
        clock = FakeClock()
        timer = PhaseTimer(clock=clock)
        timer.push("a")
        clock.advance(1.0)
        timer.pop()
        timer.push("b")
        clock.advance(2.0)
        timer.pop()
        assert timer.totals == {"a": 1.0, "b": 2.0}

    def test_nesting_is_exclusive(self):
        clock = FakeClock()
        timer = PhaseTimer(clock=clock)
        timer.push("outer")
        clock.advance(1.0)
        timer.push("inner")
        clock.advance(2.0)
        timer.pop()
        clock.advance(3.0)
        timer.pop()
        # outer gets its own 1s + 3s; inner's 2s is attributed only once
        assert timer.totals == {"outer": 4.0, "inner": 2.0}
        assert sum(timer.totals.values()) == pytest.approx(6.0)

    def test_reentrant_phase_accumulates(self):
        clock = FakeClock()
        timer = PhaseTimer(clock=clock)
        for dt in (1.0, 2.0):
            timer.push("p")
            clock.advance(dt)
            timer.pop()
        assert timer.totals == {"p": 3.0}

    def test_context_manager(self):
        clock = FakeClock()
        timer = PhaseTimer(clock=clock)
        with timer.phase("a"):
            clock.advance(1.5)
        assert timer.totals == {"a": 1.5}

    def test_snapshot_includes_running_segment(self):
        clock = FakeClock()
        timer = PhaseTimer(clock=clock)
        timer.push("a")
        clock.advance(1.0)
        assert timer.snapshot() == {"a": 1.0}
        assert timer.totals == {}  # not banked yet
        timer.pop()
        assert timer.totals == {"a": 1.0}

    def test_pop_without_push_raises(self):
        with pytest.raises(RuntimeError):
            PhaseTimer().pop()

    def test_null_timer_is_inert(self):
        assert not NULL_TIMER.enabled
        NULL_TIMER.push("x")
        assert NULL_TIMER.pop() == ""
        with NULL_TIMER.phase("y"):
            pass
        assert NULL_TIMER.totals == {}
        assert NULL_TIMER.snapshot() == {}
        assert isinstance(NULL_TIMER, NullPhaseTimer)


# ----------------------------------------------------------------------
# Tracer / JSONL round trip
# ----------------------------------------------------------------------
class TestJsonlTracer:
    def test_round_trip_kinds_and_order(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        clock = FakeClock()
        tracer = JsonlTracer(path, clock=clock)
        tracer.emit(RunHeaderEvent(solver="s", instance="i", options={"a": 1}))
        clock.advance(0.5)
        tracer.emit(DecisionEvent(literal=-3, level=1))
        clock.advance(0.25)
        tracer.emit(ResultEvent(status="optimal", cost=4, decisions=1, conflicts=0))
        tracer.close()

        records = read_trace(path)
        assert [r["kind"] for r in records] == ["run_header", "decision", "result"]
        assert records[0]["options"] == {"a": 1}
        assert records[1]["literal"] == -3
        assert records[2]["cost"] == 4
        # monotonic relative timestamps starting at 0
        times = [r["t"] for r in records]
        assert times[0] == 0.0
        assert times == sorted(times)
        # every record re-hydrates into a typed event
        events = [event_from_record(r) for r in records]
        assert isinstance(events[0], RunHeaderEvent)
        assert all(e.kind in EVENT_KINDS for e in events)

    def test_buffering_batches_writes(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = JsonlTracer(path, buffer_size=10)
        for _ in range(25):
            tracer.emit(DecisionEvent(literal=1, level=1))
        assert tracer.writes == 2  # two full buffers so far
        tracer.close()
        assert tracer.writes == 3
        assert len(read_trace(path)) == 25

    def test_context_manager_closes(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with JsonlTracer(path) as tracer:
            tracer.emit(DecisionEvent(literal=2, level=1))
        assert len(read_trace(path)) == 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            event_from_record({"kind": "nope"})


class TestNullTracerOverheadPath:
    def test_null_tracer_is_disabled_and_inert(self):
        assert not NULL_TRACER.enabled
        NULL_TRACER.emit(DecisionEvent(literal=1, level=1))  # no-op
        NULL_TRACER.flush()
        NULL_TRACER.close()
        assert isinstance(NULL_TRACER, NullTracer)

    def test_default_solve_uses_null_tracer_and_no_phase_times(self):
        instance = parse(OPT_INSTANCE)
        result = solve(instance, SolverOptions())
        assert result.status == "optimal"
        assert result.stats.phase_times == {}

    def test_disabled_tracer_receives_no_events(self):
        class Recording(Tracer):
            enabled = False

            def __init__(self):
                self.events = []

            def emit(self, event):
                self.events.append(event)

        recorder = Recording()
        instance = parse(OPT_INSTANCE)
        result = solve(instance, SolverOptions(tracer=recorder))
        assert result.status == "optimal"
        # all call sites honour the enabled guard: zero emissions
        assert recorder.events == []


# ----------------------------------------------------------------------
# Solver integration
# ----------------------------------------------------------------------
class TestSolverTraceIntegration:
    def test_trace_structure(self, tmp_path):
        path = str(tmp_path / "solve.jsonl")
        instance = parse(OPT_INSTANCE)
        with JsonlTracer(path) as tracer:
            tracer.instance_label = "opt3"
            result = solve(instance, SolverOptions(tracer=tracer))
        assert result.status == "optimal"
        records = read_trace(path)
        assert records[0]["kind"] == "run_header"
        assert records[0]["instance"] == "opt3"
        assert records[0]["options"]["lower_bound"] == "lpr"
        assert records[-1]["kind"] == "result"
        assert records[-1]["status"] == "optimal"
        assert records[-1]["cost"] == 4
        kinds = {r["kind"] for r in records}
        assert "lower_bound" in kinds
        assert "incumbent" in kinds
        summary = trace_summary(records)
        assert summary["status"] == "optimal"
        assert summary["kinds"]["run_header"] == 1

    def test_profile_phases_sum_to_at_most_elapsed(self):
        instance = parse(OPT_INSTANCE)
        result = solve(instance, SolverOptions(profile=True))
        phases = result.stats.phase_times
        assert phases, "profiling should record phases"
        assert set(phases) <= {
            "preprocess",
            "propagate",
            "analyze",
            "branching",
            "cuts",
            "lower_bound.mis",
            "lower_bound.lgr",
            "lower_bound.lpr",
        }
        assert sum(phases.values()) <= result.stats.elapsed + 1e-3
        assert result.stats.as_dict()["phase_times"] == phases

    def test_lb_stats_collected(self):
        instance = parse(OPT_INSTANCE)
        result = solve(instance, SolverOptions(lower_bound="lpr"))
        assert "lpr" in result.stats.lb_stats
        detail = result.stats.lb_stats["lpr"]
        assert detail["calls"] >= 1
        assert detail["seconds"] >= 0.0

    def test_on_progress_callback(self):
        instance = parse(OPT_INSTANCE)
        calls = []

        def on_progress(stats, best, lower):
            calls.append((stats.conflicts, best, lower))

        result = solve(
            instance,
            SolverOptions(on_progress=on_progress, progress_interval=1),
        )
        assert result.status == "optimal"
        assert calls, "progress should fire with interval=1"
        assert result.stats.progress_reports == len(calls)
        # conflicts figure is non-decreasing across reports
        conflict_counts = [c for c, _, _ in calls]
        assert conflict_counts == sorted(conflict_counts)

    def test_linear_search_trace(self, tmp_path):
        path = str(tmp_path / "pbs.jsonl")
        instance = parse(OPT_INSTANCE)
        with JsonlTracer(path) as tracer:
            solver = LinearSearchSolver(instance, tracer=tracer, profile=True)
            result = solver.solve()
        assert result.status == "optimal"
        records = read_trace(path)
        assert records[0]["kind"] == "run_header"
        assert records[0]["solver"] == "pbs-like"
        assert records[-1]["kind"] == "result"
        assert {r["kind"] for r in records} >= {"decision", "incumbent"}
        assert solver.stats.phase_times
        assert sum(solver.stats.phase_times.values()) <= solver.stats.elapsed + 1e-3


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
class TestReports:
    def test_format_profile_table(self):
        text = format_profile({"propagate": 0.5, "analyze": 0.25}, elapsed=1.0)
        lines = text.splitlines()
        assert lines[0].split() == ["phase", "seconds", "share"]
        assert "propagate" in lines[1]  # sorted by time, descending
        assert "50.0%" in lines[1]
        assert "(other)" in text  # 0.25s unattributed
        assert lines[-1].startswith("total")
        assert "100.0%" in lines[-1]

    def test_format_profile_without_elapsed(self):
        text = format_profile({"a": 1.0})
        assert "(other)" not in text
        assert "100.0%" in text

    def test_gap_history_and_progress(self):
        events = [
            {"kind": "run_header", "t": 0.0},
            {"kind": "lower_bound", "t": 0.1, "level": 0, "path": 0, "value": 2},
            {"kind": "incumbent", "t": 0.2, "cost": 9},
            {"kind": "incumbent", "t": 0.3, "cost": 4},
            {"kind": "progress", "t": 0.4, "best": 4, "lower": 3},
            {"kind": "result", "t": 0.5, "status": "optimal", "cost": 4},
        ]
        points = gap_history(events)
        assert points[0] == {"t": 0.1, "best": None, "lower": 2}
        assert points[-1] == {"t": 0.4, "best": 4, "lower": 3}
        text = format_progress(events)
        assert "gap" in text.splitlines()[0]
        assert "1" in text.splitlines()[-1]  # final gap 4 - 3

    def test_run_record_as_dict_is_json_serializable(self):
        from repro.experiments.runner import run_one

        instance = parse(OPT_INSTANCE)
        record = run_one("bsolo-mis", instance, "opt3")
        row = record.as_dict()
        encoded = json.loads(json.dumps(row))
        assert encoded["solver"] == "bsolo-mis"
        assert encoded["status"] == "optimal"
        assert encoded["stats"]["decisions"] >= 0


# ----------------------------------------------------------------------
# Crash safety (portfolio workers die without close())
# ----------------------------------------------------------------------
class TestCrashSafety:
    def test_killed_writer_leaves_buffered_events_on_disk(self, tmp_path):
        """A worker that hard-exits mid-run must still leave a valid trace."""
        import subprocess
        import sys

        path = tmp_path / "crash.jsonl"
        script = (
            "import sys\n"
            "from repro.obs.trace import JsonlTracer\n"
            "from repro.obs.events import DecisionEvent, RunHeaderEvent\n"
            "tracer = JsonlTracer(sys.argv[1], buffer_size=1000)\n"
            "tracer.emit(RunHeaderEvent(solver='bsolo', instance='crash'))\n"
            "for i in range(25):\n"
            "    tracer.emit(DecisionEvent(literal=i + 1, level=i))\n"
            # die from an uncaught exception: close() never runs, the
            # weakref finalizer must drain the buffer at interpreter exit
            "raise RuntimeError('worker died')\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script, str(path)],
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            cwd=".",
        )
        assert proc.returncode == 1
        records = read_trace(str(path))
        # the finalizer drained the buffer on interpreter exit
        assert len(records) == 26
        assert records[0]["kind"] == "run_header"
        assert records[-1]["kind"] == "decision"

    def test_truncated_final_line_dropped_by_default(self, tmp_path):
        path = tmp_path / "trunc.jsonl"
        path.write_text(
            '{"kind":"run_header","t":0.0}\n'
            '{"kind":"decision","t":0.1,"literal":1}\n'
            '{"kind":"result","t":0.2,"sta'  # killed mid-write
        )
        records = read_trace(str(path))
        assert [r["kind"] for r in records] == ["run_header", "decision"]

    def test_truncated_final_line_raises_under_strict(self, tmp_path):
        path = tmp_path / "trunc.jsonl"
        path.write_text('{"kind":"run_header","t":0.0}\n{"kind":"dec')
        with pytest.raises(ValueError):
            read_trace(str(path), strict=True)

    def test_corrupt_middle_line_always_raises(self, tmp_path):
        path = tmp_path / "corrupt.jsonl"
        path.write_text(
            '{"kind":"run_header","t":0.0}\n'
            "not json at all\n"
            '{"kind":"result","t":0.2,"status":"optimal"}\n'
        )
        with pytest.raises(ValueError):
            read_trace(str(path))


# ----------------------------------------------------------------------
# Report edge cases
# ----------------------------------------------------------------------
class TestReportEdgeCases:
    def test_empty_trace_summary(self):
        summary = trace_summary([])
        assert summary["kinds"] == {}
        assert summary["status"] is None
        assert "workers" not in summary

    def test_empty_trace_progress_renders_header_only(self):
        text = format_progress([])
        assert text.splitlines()[0].split() == ["t", "best", "lower", "gap"]
        assert len(text.splitlines()) == 1

    def test_gap_history_without_incumbent(self):
        events = [
            {"kind": "run_header", "t": 0.0},
            {"kind": "lower_bound", "t": 0.1, "level": 0, "path": 0, "value": 2},
            {"kind": "result", "t": 0.2, "status": "unsatisfiable"},
        ]
        points = gap_history(events)
        assert points == [{"t": 0.1, "best": None, "lower": 2}]
        text = format_progress(events)
        assert text.splitlines()[-1].endswith("-")  # gap undefined

    def test_gap_history_ignores_deep_and_infeasible_bounds(self):
        events = [
            {"kind": "lower_bound", "t": 0.1, "level": 3, "path": 1, "value": 9},
            {
                "kind": "lower_bound", "t": 0.2, "level": 0,
                "path": 0, "value": 5, "infeasible": True,
            },
        ]
        assert gap_history(events) == []

    def test_trace_summary_merged_timeline_reports_best_status(self):
        records = [
            {"kind": "result", "t": 1.0, "status": "satisfiable", "worker_id": 0},
            {"kind": "result", "t": 1.5, "status": "optimal", "worker_id": 1},
            {"kind": "decision", "t": 0.5, "worker_id": 2, "literal": 1},
        ]
        summary = trace_summary(records)
        assert summary["workers"] == [0, 1, 2]
        assert summary["status"] == "optimal"  # best across the fleet

    def test_format_profile_counters_table(self):
        text = format_profile(
            {"propagate": 0.5, "proof": 0.1},
            elapsed=1.0,
            counters={"uncertified_prunes": 3, "zero_counter": 0},
        )
        assert "proof" in text
        assert "counter" in text
        assert "uncertified_prunes" in text
        assert "3" in text.splitlines()[-1]
        assert "zero_counter" not in text  # zero values suppressed

    def test_format_profile_no_counter_table_when_all_zero(self):
        text = format_profile({"a": 1.0}, counters={"n": 0})
        assert "counter" not in text


# ----------------------------------------------------------------------
# Registry-wide smoke: every solver honours tracer/profile uniformly
# ----------------------------------------------------------------------
class TestRegistryWideObservability:
    def test_every_registered_solver_traces_and_profiles(self, tmp_path):
        """Each solver must emit run_header/result and honour profile=True.

        The portfolio coordinator is excluded: in-process trace sinks
        cannot cross the worker process boundary (use ``trace_path``,
        covered by tests/test_obs_merge.py).
        """
        from repro.api import available_solvers

        instance = parse(OPT_INSTANCE)
        for name in available_solvers():
            if name == "portfolio":
                continue
            path = tmp_path / ("%s.jsonl" % name)
            with JsonlTracer(str(path), buffer_size=1) as tracer:
                result = solve(
                    instance, solver=name, tracer=tracer, profile=True
                )
            assert result.status == "optimal", name
            assert result.best_cost == 4, name
            records = read_trace(str(path))
            kinds = [record["kind"] for record in records]
            assert kinds[0] == "run_header", name
            assert "result" in kinds, name
            final = [r for r in records if r["kind"] == "result"][-1]
            assert final["status"] == "optimal", name
            assert isinstance(result.stats.phase_times, dict), name
            assert all(
                seconds >= 0.0
                for seconds in result.stats.phase_times.values()
            ), name
