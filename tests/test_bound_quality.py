"""Tests for the root-bound quality experiment."""

import pytest

from repro.benchgen import generate_covering, generate_routing
from repro.experiments import bound_quality, format_bound_quality


@pytest.fixture(scope="module")
def records():
    instances = [
        generate_covering(minterms=20, implicants=12, density=0.2, max_cost=20, seed=s)
        for s in (1, 2)
    ] + [generate_routing(rows=4, cols=4, nets=5, capacity=2, seed=3)]
    labels = ["cov-1", "cov-2", "route-1"]
    return bound_quality(instances, labels, lgr_iterations=150)


class TestBoundQuality:
    def test_all_measured(self, records):
        assert [record.label for record in records] == ["cov-1", "cov-2", "route-1"]
        for record in records:
            assert record.optimum is not None  # small instances solve

    def test_bounds_below_optimum(self, records):
        for record in records:
            assert record.mis <= record.optimum
            assert record.lgr <= record.optimum
            assert record.lpr <= record.optimum

    def test_lpr_at_least_mis(self, records):
        # Section 3.1's "often" holds always on these families
        for record in records:
            assert record.lpr >= record.mis

    def test_gap_computation(self, records):
        for record in records:
            if record.optimum:
                gap = record.gap("lpr")
                assert 0.0 <= gap <= 100.0

    def test_gap_none_without_optimum(self):
        from repro.experiments.bounds import BoundRecord

        record = BoundRecord("x", None, 1, 1, 1, 0.0, 0.0, 0.0)
        assert record.gap("lpr") is None

    def test_formatting(self, records):
        text = format_bound_quality(records)
        assert "instance" in text and "LPR >= MIS" in text
        assert "cov-1" in text
