"""Array-backend specifics the generic differential suite cannot cover.

``tests/test_prop_differential.py`` already runs the array engine
through the shared lockstep fuzz and full-solve agreement checks.  This
file adds what is unique to the vectorized backend:

* the ``int64`` dtype guard — coefficient totals beyond ``2**62`` must
  be rejected loudly (the pure-Python backends use unbounded ints and
  would silently diverge otherwise), while coefficients far beyond the
  ``int32`` range must still propagate exactly;
* mid-search learned-constraint deletion under lockstep, exercising the
  CSR compaction and queued-batch remapping against the counter oracle
  on constraints drawn from every propbench family;
* incremental sessions (push/pop frames, assumption solving) on the
  array backend, checked cold-equivalent.
"""

from __future__ import annotations

import random

import pytest

from repro.benchgen import constraint_stream
from repro.core import OPTIMAL, BsoloSolver, SolverOptions
from repro.engine.array_store import MAX_COEFFICIENT_TOTAL
from repro.engine.interface import Conflict, make_engine
from repro.experiments.propbench import family_instances
from repro.incremental import make_session
from repro.pb.constraints import Constraint

BIG = 1 << 61


# ----------------------------------------------------------------------
# dtype / overflow guard
# ----------------------------------------------------------------------
class TestOverflowGuard:
    def test_coefficient_total_beyond_int64_budget_raises(self):
        engine = make_engine("array", 4)
        # saturation clamps each coefficient to the rhs, so a huge rhs is
        # needed to carry huge coefficients through normalization
        constraint = Constraint.greater_equal(
            [(BIG, 1), (BIG, 2), (BIG, 3)], BIG
        )
        assert sum(coef for coef, _ in constraint.terms) >= MAX_COEFFICIENT_TOTAL
        with pytest.raises(OverflowError):
            engine.add_constraint(constraint)
        # the reference backend has no such limit
        assert make_engine("counter", 4).add_constraint(constraint) is None

    def test_single_saturated_coefficient_at_the_limit_raises(self):
        engine = make_engine("array", 4)
        constraint = Constraint.greater_equal(
            [(MAX_COEFFICIENT_TOTAL, 1)], MAX_COEFFICIENT_TOTAL
        )
        with pytest.raises(OverflowError):
            engine.add_constraint(constraint)

    def test_beyond_int32_coefficients_propagate_exactly(self):
        # coefficients around 2**40 overflow int32 many times over; the
        # int64 arrays must agree with unbounded-int counter arithmetic
        for seed in range(8):
            rng = random.Random(900 + seed)
            num_vars = 8
            engines = [make_engine(name, num_vars) for name in ("counter", "array")]
            for _ in range(6):
                arity = rng.randint(2, 5)
                variables = rng.sample(range(1, num_vars + 1), arity)
                lits = [v if rng.random() < 0.5 else -v for v in variables]
                coefs = [rng.randint(1, 1 << 40) for _ in lits]
                rhs = rng.randint(1, max(1, sum(coefs) - 1))
                constraint = Constraint.greater_equal(
                    list(zip(coefs, lits)), rhs
                )
                results = [e.add_constraint(constraint) for e in engines]
                assert isinstance(results[0], Conflict) == isinstance(
                    results[1], Conflict
                ), seed
            for _ in range(12):
                free = [
                    v
                    for v in range(1, num_vars + 1)
                    if engines[0].trail.value(v) < 0
                ]
                if not free:
                    break
                var = rng.choice(free)
                lit = var if rng.random() < 0.5 else -var
                for engine in engines:
                    engine.decide(lit)
                outcomes = [engine.propagate() for engine in engines]
                kinds = [isinstance(o, Conflict) for o in outcomes]
                assert kinds[0] == kinds[1], seed
                if kinds[0]:
                    for engine in engines:
                        engine.backtrack(0)
                else:
                    implied = [set(e.trail.literals) for e in engines]
                    assert implied[0] == implied[1], seed


# ----------------------------------------------------------------------
# learned-constraint deletion lockstep
# ----------------------------------------------------------------------
def _random_clause(rng: random.Random, num_vars: int) -> Constraint:
    arity = rng.randint(2, min(5, num_vars))
    variables = rng.sample(range(1, num_vars + 1), arity)
    return Constraint.clause(
        [v if rng.random() < 0.5 else -v for v in variables]
    )


def _run_deletion_lockstep(instance, seed: int) -> None:
    rng = random.Random(seed)
    num_vars = instance.num_variables
    engines = [make_engine(name, num_vars) for name in ("counter", "array")]
    for constraint in instance.constraints:
        for engine in engines:
            engine.add_constraint(constraint)
    learned: list = []
    for step in range(60):
        op = rng.random()
        if op < 0.15:
            # learn a random clause (both engines get the same object,
            # so deletion can be coordinated by identity)
            clause = _random_clause(rng, num_vars)
            learned.append(clause)
            results = [
                engine.add_constraint(clause, learned=True)
                for engine in engines
            ]
            kinds = [isinstance(r, Conflict) for r in results]
            assert kinds[0] == kinds[1], ("add", seed, step)
        elif op < 0.25 and learned:
            # delete roughly half the learned constraints, mid-search
            doomed = {
                id(c) for c in learned if rng.random() < 0.5
            }
            learned = [c for c in learned if id(c) not in doomed]
            removed = [
                engine.reduce_learned(
                    lambda stored: id(stored.constraint) not in doomed
                )
                for engine in engines
            ]
            assert removed[0] == removed[1], ("removed", seed, step)
        elif op < 0.7:
            free = [
                v
                for v in range(1, num_vars + 1)
                if engines[0].trail.value(v) < 0
            ]
            if not free:
                continue
            var = rng.choice(free)
            lit = var if rng.random() < 0.5 else -var
            for engine in engines:
                engine.decide(lit)
            outcomes = [engine.propagate() for engine in engines]
            kinds = [isinstance(o, Conflict) for o in outcomes]
            assert kinds[0] == kinds[1], ("conflict", seed, step)
            if kinds[0]:
                level = engines[0].trail.decision_level
                target = rng.randint(0, max(0, level - 1))
                for engine in engines:
                    engine.backtrack(target)
            else:
                implied = [set(e.trail.literals) for e in engines]
                assert implied[0] == implied[1], (
                    "implied",
                    seed,
                    step,
                    implied[0] ^ implied[1],
                )
        else:
            level = engines[0].trail.decision_level
            if level == 0:
                continue
            target = rng.randint(0, level - 1)
            for engine in engines:
                engine.backtrack(target)
        for v in range(1, num_vars + 1):
            assert engines[0].trail.value(v) == engines[1].trail.value(v), (
                "value",
                seed,
                step,
                v,
            )


class TestLearnedDeletionLockstep:
    @pytest.mark.parametrize("family", ["ptl", "grout", "random"])
    def test_deletion_keeps_backends_in_lockstep(self, family):
        instances = family_instances(family, count=1, scale=0.2)
        for offset, instance in enumerate(instances):
            for seed in range(4):
                _run_deletion_lockstep(instance, 100 * offset + seed)


# ----------------------------------------------------------------------
# sessions and assumptions on the array backend
# ----------------------------------------------------------------------
def _options(**overrides):
    base = dict(
        preprocess=False,
        covering_reductions=False,
        propagation="array",
    )
    base.update(overrides)
    return SolverOptions(**base)


class TestArraySessions:
    def test_push_pop_stream_is_cold_equivalent(self):
        stream = constraint_stream(
            num_variables=10, num_constraints=14, steps=6, seed=7
        )
        opts = _options(lower_bound="mis")
        session = make_session(stream.instance, opts)
        for index, step in enumerate(stream.steps):
            if step.pop:
                session.pop()
            if step.push is not None:
                session.push()
                session.add_constraint(step.push)
            warm = session.solve_under(step.assumptions)
            effective, assumptions = stream.materialize(index)
            cold = BsoloSolver(effective, opts)
            cold.set_assumptions(list(assumptions))
            reference = cold.solve()
            assert (warm.status, warm.best_cost) == (
                reference.status,
                reference.best_cost,
            ), "array session diverged at step %d" % index

    def test_assumption_solving_matches_counter(self):
        instances = family_instances("random", count=1, scale=0.2)
        instance = instances[0]
        rng = random.Random(17)
        for _ in range(4):
            assumptions = [
                v if rng.random() < 0.5 else -v
                for v in rng.sample(range(1, instance.num_variables + 1), 2)
            ]
            outcomes = {}
            for backend in ("counter", "array"):
                solver = BsoloSolver(
                    instance, SolverOptions(propagation=backend)
                )
                solver.set_assumptions(assumptions)
                outcomes[backend] = solver.solve()
            assert (
                outcomes["counter"].status == outcomes["array"].status
            ), assumptions
            if outcomes["counter"].status == OPTIMAL:
                assert (
                    outcomes["counter"].best_cost
                    == outcomes["array"].best_cost
                ), assumptions
