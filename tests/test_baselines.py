"""Tests for the comparator solvers (PBS-like, Galena-like, CPLEX-like)."""

import pytest

from repro.baselines import (
    BruteForceSolver,
    CuttingPlanesSolver,
    DecisionSearch,
    LinearSearchSolver,
    MILPSolver,
    cardinality_reduction,
)
from repro.core import OPTIMAL, SATISFIABLE, UNKNOWN, UNSATISFIABLE
from repro.pb import Constraint, Objective, PBInstance

SOLVERS = [LinearSearchSolver, CuttingPlanesSolver, MILPSolver]


def covering_instance():
    return PBInstance(
        [
            Constraint.clause([1, 2]),
            Constraint.clause([2, 3]),
            Constraint.clause([1, 3]),
        ],
        Objective({1: 3, 2: 2, 3: 2}),
    )


def unsat_instance():
    return PBInstance(
        [
            Constraint.clause([1, 2]),
            Constraint.clause([-1, 2]),
            Constraint.clause([1, -2]),
            Constraint.clause([-1, -2]),
        ]
    )


class TestDecisionSearch:
    def test_sat(self):
        search = DecisionSearch(2)
        search.add_constraint(Constraint.clause([1, 2]))
        outcome, model = search.solve()
        assert outcome == "sat"
        assert model[1] == 1 or model[2] == 1

    def test_unsat(self):
        search = DecisionSearch(2)
        for constraint in unsat_instance().constraints:
            search.add_constraint(constraint)
        outcome, model = search.solve()
        assert outcome == "unsat" and model is None

    def test_incremental_tightening(self):
        search = DecisionSearch(2)
        search.add_constraint(Constraint.clause([1, 2]))
        outcome, model = search.solve()
        assert outcome == "sat"
        # forbid the model, ask again
        forbid = Constraint.clause(
            [-v if model[v] == 1 else v for v in (1, 2)]
        )
        search.add_constraint(forbid)
        outcome2, model2 = search.solve()
        assert outcome2 == "sat"
        assert model2 != model

    def test_conflict_budget(self):
        search = DecisionSearch(2)
        for constraint in unsat_instance().constraints:
            search.add_constraint(constraint)
        # budget may stop the search early; whichever happens it must not
        # report SAT
        outcome, _ = search.solve(max_conflicts=0)
        assert outcome in ("unsat", "stopped")


class TestCardinalityReduction:
    def test_reduces_general_constraint(self):
        constraint = Constraint.greater_equal([(3, 1), (2, 2), (1, 3)], 4)
        reduced = cardinality_reduction(constraint)
        assert reduced is not None
        assert reduced.is_cardinality
        assert reduced.cardinality_threshold == 2

    def test_reduction_is_implied(self):
        import itertools

        constraint = Constraint.greater_equal([(3, 1), (2, 2), (2, 3), (1, 4)], 5)
        reduced = cardinality_reduction(constraint)
        assert reduced is not None
        for bits in itertools.product((0, 1), repeat=4):
            assignment = {v: bits[v - 1] for v in range(1, 5)}
            if constraint.is_satisfied_by(assignment):
                assert reduced.is_satisfied_by(assignment)

    def test_cardinality_input_skipped(self):
        assert cardinality_reduction(Constraint.at_least([1, 2, 3], 2)) is None

    def test_vacuous_skipped(self):
        clause = Constraint.clause([1, 2])
        assert cardinality_reduction(clause) is None


class TestBaselineCorrectness:
    @pytest.mark.parametrize("solver_cls", SOLVERS)
    def test_covering_optimum(self, solver_cls):
        result = solver_cls(covering_instance()).solve()
        assert result.status == OPTIMAL
        assert result.best_cost == 4

    @pytest.mark.parametrize("solver_cls", SOLVERS)
    def test_unsat(self, solver_cls):
        result = solver_cls(unsat_instance()).solve()
        assert result.status == UNSATISFIABLE

    @pytest.mark.parametrize("solver_cls", SOLVERS)
    def test_satisfaction(self, solver_cls):
        instance = PBInstance([Constraint.clause([1, 2]), Constraint.clause([-1, 2])])
        result = solver_cls(instance).solve()
        assert result.status == SATISFIABLE
        assert instance.check(result.best_assignment)

    @pytest.mark.parametrize("solver_cls", SOLVERS)
    @pytest.mark.parametrize("seed", range(10))
    def test_random_against_brute_force(self, solver_cls, seed):
        import random

        rng = random.Random(1000 + seed)
        n = rng.randint(3, 6)
        constraints = []
        for _ in range(rng.randint(2, 7)):
            size = rng.randint(1, min(4, n))
            variables = rng.sample(range(1, n + 1), size)
            terms = [
                (rng.randint(1, 4), v if rng.random() < 0.6 else -v)
                for v in variables
            ]
            rhs = rng.randint(1, max(1, sum(c for c, _ in terms)))
            constraint = Constraint.greater_equal(terms, rhs)
            if not constraint.is_tautology and not constraint.is_unsatisfiable:
                constraints.append(constraint)
        objective = Objective({v: rng.randint(0, 6) for v in range(1, n + 1)})
        try:
            instance = PBInstance(constraints, objective, num_variables=n)
        except ValueError:
            pytest.skip("degenerate draw")
        expected = BruteForceSolver(instance).solve()
        result = solver_cls(instance).solve()
        assert result.solved
        if expected.status == UNSATISFIABLE:
            assert result.status == UNSATISFIABLE
        else:
            assert result.best_cost == expected.best_cost
            assert instance.check(result.best_assignment)


class TestBudgets:
    @pytest.mark.parametrize(
        "solver_cls", [LinearSearchSolver, CuttingPlanesSolver]
    )
    def test_time_limit(self, solver_cls):
        result = solver_cls(covering_instance(), time_limit=0.0).solve()
        assert result.status in (UNKNOWN, OPTIMAL)

    def test_milp_node_limit(self):
        result = MILPSolver(covering_instance(), max_nodes=1).solve()
        assert result.status in (UNKNOWN, OPTIMAL)

    def test_milp_time_limit(self):
        result = MILPSolver(covering_instance(), time_limit=0.0).solve()
        assert result.status in (UNKNOWN, OPTIMAL)


class TestBruteForce:
    def test_caps_variables(self):
        instance = PBInstance([], num_variables=30)
        with pytest.raises(ValueError):
            BruteForceSolver(instance)

    def test_satisfaction_short_circuit(self):
        instance = PBInstance([Constraint.clause([1, 2])])
        result = BruteForceSolver(instance).solve()
        assert result.status == SATISFIABLE
