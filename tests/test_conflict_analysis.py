"""Unit tests for first-UIP conflict analysis."""

import pytest

from repro.engine import Propagator, RootConflictError, analyze, highest_level
from repro.pb import Constraint


class TestHighestLevel:
    def test_mixed_levels(self):
        prop = Propagator(3)
        prop.decide(1)
        prop.decide(2)
        prop.decide(3)
        assert highest_level([-1, -3], prop.trail) == 3
        assert highest_level([-1], prop.trail) == 1
        assert highest_level([], prop.trail) == 0


class TestAnalyze:
    def test_simple_two_level_conflict(self):
        # clauses: (~1 | 2), (~1 | ~2) -> deciding 1 conflicts; learned (~1)
        prop = Propagator(2)
        prop.add_constraint(Constraint.clause([-1, 2]))
        prop.add_constraint(Constraint.clause([-1, -2]))
        prop.decide(1)
        conflict = prop.propagate()
        assert conflict is not None
        result = analyze(conflict.literals, prop.trail)
        assert result.learned_literals == (-1,)
        assert result.backtrack_level == 0
        assert result.asserting_literal == -1

    def test_uip_below_decision(self):
        # Classic 1UIP: decide 1 (level 1), decide 2 (level 2);
        # clauses: (~2 | 3), (~3 | 4), (~3 | ~1 | 5), (~4 | ~5 | ~1)
        # Conflict involves 4, 5 implied from 3: UIP is 3.
        prop = Propagator(5)
        prop.add_constraint(Constraint.clause([-2, 3]))
        prop.add_constraint(Constraint.clause([-3, 4]))
        prop.add_constraint(Constraint.clause([-3, -1, 5]))
        prop.add_constraint(Constraint.clause([-4, -5, -1]))
        prop.decide(1)
        assert prop.propagate() is None
        prop.decide(2)
        conflict = prop.propagate()
        assert conflict is not None
        result = analyze(conflict.literals, prop.trail)
        assert set(result.learned_literals) == {-3, -1}
        assert result.asserting_literal == -3
        assert result.backtrack_level == 1

    def test_non_chronological_jump(self):
        # Decisions at levels 1..3; conflict depends only on levels 1 and 3
        # -> backjump to level 1, skipping level 2.
        prop = Propagator(4)
        prop.add_constraint(Constraint.clause([-1, -3, 4]))
        prop.add_constraint(Constraint.clause([-1, -3, -4]))
        prop.decide(1)
        assert prop.propagate() is None
        prop.decide(2)  # irrelevant level
        assert prop.propagate() is None
        prop.decide(3)
        conflict = prop.propagate()
        assert conflict is not None
        result = analyze(conflict.literals, prop.trail)
        assert result.backtrack_level == 1
        assert result.asserting_literal == -3
        assert set(result.learned_literals) == {-3, -1}

    def test_root_conflict_raises(self):
        prop = Propagator(1)
        prop.assume(1)
        conflict = prop.add_constraint(Constraint.clause([-1]))
        assert conflict is not None
        with pytest.raises(RootConflictError):
            analyze(conflict.literals, prop.trail)

    def test_learned_clause_literals_all_false(self):
        # 2*x1 + x2 + x3 >= 2, (~2|~4), (~1|~4): deciding 4 falsifies x1
        # and x2, violating the PB constraint.
        prop = Propagator(4)
        prop.add_constraint(Constraint.greater_equal([(2, 1), (1, 2), (1, 3)], 2))
        prop.add_constraint(Constraint.clause([-2, -4]))
        prop.add_constraint(Constraint.clause([-1, -4]))
        prop.decide(4)
        conflict = prop.propagate()
        assert conflict is not None
        result = analyze(conflict.literals, prop.trail)
        assert result.learned_literals == (-4,)
        for lit in result.learned_literals:
            assert prop.trail.literal_is_false(lit)

    def test_level_zero_literals_dropped(self):
        # Root-level fact ~3; conflict explanation mentioning 3 must not
        # leak into the learned clause.
        prop = Propagator(3)
        prop.assume(-3)
        prop.add_constraint(Constraint.clause([-1, 2, 3]))
        prop.add_constraint(Constraint.clause([-1, -2, 3]))
        prop.decide(1)
        conflict = prop.propagate()
        assert conflict is not None
        result = analyze(conflict.literals, prop.trail)
        assert result.learned_literals == (-1,)
        assert 3 not in [abs(l) for l in result.learned_literals]

    def test_seen_variables_reported(self):
        prop = Propagator(2)
        prop.add_constraint(Constraint.clause([-1, 2]))
        prop.add_constraint(Constraint.clause([-1, -2]))
        prop.decide(1)
        conflict = prop.propagate()
        result = analyze(conflict.literals, prop.trail)
        assert set(result.seen_variables) >= {1, 2}
